// Detector: incremental pattern matching over one window.
//
// The detector is the "operator logic" of Fig. 8 line 14: the caller feeds it
// the window's events one at a time (already filtered — suppressed events are
// never fed, see §3.3) and receives Feedback describing exactly the four
// actions the paper enumerates: (1) partial matches completed → complex
// events + completed consumption groups, (2) abandoned groups, (3) newly
// created groups, (4) events added to existing groups. The detector itself is
// engine-agnostic: the sequential engine, SPECTRE's operator instances and
// the statistics gatherer all drive the same class.
//
// Matching semantics (DESIGN.md §5): skip-till-next-match over the element
// sequence; Plus is advance-first Kleene+ (a trailing Plus completes on its
// first absorption — min-match); Set binds its members in any order; an
// element's negation guard abandons the partial match if a guard-matching
// event arrives while the element is current. Window end abandons all open
// matches. Events consumed by a completed match are excluded from later
// binding within the same window, and concurrently active matches that had
// bound a now-consumed event are abandoned — an event participates in at
// most one pattern instance.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "detect/compiled_query.hpp"

namespace spectre::detect {

using MatchId = std::uint64_t;

// Why a partial match went away (maps to consumptionGroupAbandoned reasons in
// §3.1: end of window, or a negation guard firing; ConsumedElsewhere is the
// intra-window flavor of consumption).
enum class AbandonReason { WindowEnd, Guard, ConsumedElsewhere };

// δ transition observed while processing one event (input to the Markov
// transition statistics, §3.2.1). Emitted for every active match on every
// processed event — including δ_to == δ_from ("no progress"), which is what
// lets the chain learn how often events fail to advance a pattern.
struct DeltaTransition {
    int from = 0;
    int to = 0;
};

struct Feedback {
    struct Created {
        MatchId id;
        int delta;          // δ right after creation (first event already bound)
        bool consumable;    // pattern can consume anything → engines open a CG
    };
    struct Bound {
        MatchId id;
        event::Seq seq;
        bool consumable;    // event would be consumed on completion → CG member
        int delta_after;
    };
    struct Completed {
        MatchId id;
        event::ComplexEvent complex_event;
        std::vector<event::Seq> consumed;  // ascending
    };
    struct Abandoned {
        MatchId id;
        AbandonReason reason;
    };

    std::vector<Created> created;
    std::vector<Bound> bound;
    std::vector<Completed> completed;
    std::vector<Abandoned> abandoned;
    std::vector<DeltaTransition> transitions;

    void clear();
    bool empty() const;
};

class Detector {
public:
    explicit Detector(const CompiledQuery* cq);

    // Starts (or restarts) processing of window `w`. Resets all state; this
    // is also the rollback path (§3.3: "rolled back to the start").
    void begin_window(const query::WindowInfo& w);

    // Feeds the next event of the window. `e` must live in the engine's
    // EventStore (the detector keeps pointers for payload evaluation) and
    // must not be a suppressed/consumed event — filtering is the caller's
    // job, per Fig. 8 line 13.
    void on_event(const event::Event& e, Feedback& fb);

    // Closes the window: abandons all still-open matches (Fig. 4 abandonment
    // reason 1, "termination of the corresponding window version").
    void end_window(Feedback& fb);

    const query::WindowInfo& window() const noexcept { return win_; }
    std::size_t active_matches() const noexcept { return matches_.size(); }

    // Smallest δ over active matches, or -1 if none (diagnostics only).
    int min_delta() const;

private:
    struct BoundEvent {
        event::Seq seq;
        std::uint16_t elem;
        std::int16_t member;  // -1 unless a SET member binding
    };

    struct PartialMatch {
        MatchId id = 0;
        std::size_t elem = 0;          // current element index
        bool plus_entered = false;     // current Plus absorbed >= 1 event
        // Matched members of the current Set element, one bit per member
        // (multi-word: Q3-style sets can exceed 64 members).
        std::vector<std::uint64_t> set_mask;
        bool complete = false;
        std::vector<BoundEvent> bound;
        std::vector<const event::Event*> slots;  // binding slot -> first event

        bool set_bit(std::size_t j) const {
            const std::size_t w = j / 64;
            return w < set_mask.size() && ((set_mask[w] >> (j % 64)) & 1u);
        }
        void mark_bit(std::size_t j, std::size_t total) {
            set_mask.resize((total + 63) / 64, 0);
            set_mask[j / 64] |= 1ull << (j % 64);
        }
        int set_count() const {
            int n = 0;
            for (const auto w : set_mask) n += std::popcount(w);
            return n;
        }
    };

    enum class StepResult { NoMatch, Bound, Completed, GuardAbandoned };

    int delta_of(const PartialMatch& m) const;
    bool match_done(const PartialMatch& m) const;
    bool try_enter(PartialMatch& m, std::size_t elem, const event::Event& e,
                   Feedback& fb);
    StepResult step(PartialMatch& m, const event::Event& e, Feedback& fb);
    void bind(PartialMatch& m, std::size_t elem, int member, int slot,
              const event::Event& e, Feedback& fb);
    void complete_match(PartialMatch& m, Feedback& fb,
                        std::vector<PartialMatch>& spawned);
    // Builds the successor match carrying the sticky prefix of `m`, if the
    // pattern has one and none of its events were consumed.
    void spawn_sticky_successor(const PartialMatch& m, Feedback& fb,
                                std::vector<PartialMatch>& spawned);
    query::EvalContext ctx(const PartialMatch& m, const event::Event* current) const;
    bool match_limit_reached() const;

    const CompiledQuery* cq_;
    query::WindowInfo win_{};
    std::vector<PartialMatch> matches_;
    std::unordered_set<event::Seq> local_consumed_;
    MatchId next_id_ = 1;
    int matches_started_ = 0;
};

}  // namespace spectre::detect
