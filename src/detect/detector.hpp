// Detector: incremental pattern matching over one window.
//
// The detector is the "operator logic" of Fig. 8 line 14: the caller feeds it
// the window's events one at a time (already filtered — suppressed events are
// never fed, see §3.3) and receives Feedback describing exactly the four
// actions the paper enumerates: (1) partial matches completed → complex
// events + completed consumption groups, (2) abandoned groups, (3) newly
// created groups, (4) events added to existing groups. The detector itself is
// engine-agnostic: the sequential engine, SPECTRE's operator instances and
// the statistics gatherer all drive the same class.
//
// Matching semantics (DESIGN.md §5): skip-till-next-match over the element
// sequence; Plus is advance-first Kleene+ (a trailing Plus completes on its
// first absorption — min-match); Set binds its members in any order; an
// element's negation guard abandons the partial match if a guard-matching
// event arrives while the element is current. Window end abandons all open
// matches. Events consumed by a completed match are excluded from later
// binding within the same window, and concurrently active matches that had
// bound a now-consumed event are abandoned — an event participates in at
// most one pattern instance.
//
// Hot-path discipline (DESIGN.md §5.1): after warm-up the per-event path is
// allocation-free. Partial matches live in a generation-checked pool whose
// bound/slot vectors are recycled through a free list; the per-window
// consumed set is a window-relative bitmap; predicate and payload programs
// run on a reused value stack; every per-event temporary is a cleared (not
// reallocated) member scratch buffer.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "detect/compiled_query.hpp"
#include "obs/metrics.hpp"

namespace spectre::detect {

using MatchId = std::uint64_t;

// How the detector evaluates predicates / payloads: Compiled runs the flat
// ExprPrograms (the production path); Tree walks the shared_ptr expression
// trees via query::eval. Tree exists as the differential baseline — the
// randomized tests and bench_detect_hot's parity guard run both and require
// byte-identical Feedback.
enum class EvalMode { Compiled, Tree };

// Why a partial match went away (maps to consumptionGroupAbandoned reasons in
// §3.1: end of window, or a negation guard firing; ConsumedElsewhere is the
// intra-window flavor of consumption).
enum class AbandonReason { WindowEnd, Guard, ConsumedElsewhere };

// δ transition observed while processing one event (input to the Markov
// transition statistics, §3.2.1). Emitted for every active match on every
// processed event — including δ_to == δ_from ("no progress"), which is what
// lets the chain learn how often events fail to advance a pattern.
struct DeltaTransition {
    int from = 0;
    int to = 0;
};

struct Feedback {
    struct Created {
        MatchId id;
        int delta;          // δ right after creation (first event already bound)
        bool consumable;    // pattern can consume anything → engines open a CG
    };
    struct Bound {
        MatchId id;
        event::Seq seq;
        bool consumable;    // event would be consumed on completion → CG member
        int delta_after;
    };
    struct Completed {
        MatchId id;
        event::ComplexEvent complex_event;
        std::vector<event::Seq> consumed;  // ascending
    };
    struct Abandoned {
        MatchId id;
        AbandonReason reason;
    };

    std::vector<Created> created;
    std::vector<Bound> bound;
    std::vector<Completed> completed;
    std::vector<Abandoned> abandoned;
    std::vector<DeltaTransition> transitions;

    // Drops the entries but keeps every buffer's high-water capacity, so a
    // caller reusing one Feedback across events stops allocating once the
    // workload's per-event peak has been seen.
    void clear();
    bool empty() const;
};

class Detector {
public:
    explicit Detector(const CompiledQuery* cq, EvalMode mode = EvalMode::Compiled);

    // Starts (or restarts) processing of window `w`. Resets all state; this
    // is also the rollback path (§3.3: "rolled back to the start").
    void begin_window(const query::WindowInfo& w);

    // Feeds the next event of the window. `e` must live in the engine's
    // EventStore (the detector keeps pointers for payload evaluation) and
    // must not be a suppressed/consumed event — filtering is the caller's
    // job, per Fig. 8 line 13.
    void on_event(const event::Event& e, Feedback& fb);

    // Closes the window: abandons all still-open matches (Fig. 4 abandonment
    // reason 1, "termination of the corresponding window version").
    void end_window(Feedback& fb);

    const query::WindowInfo& window() const noexcept { return win_; }
    std::size_t active_matches() const noexcept { return active_.size(); }
    EvalMode eval_mode() const noexcept { return mode_; }

    // Metrics plane (DESIGN.md §12), window-granularity by design: per event
    // the detector only bumps a plain member; the shard's cells are touched
    // once per end_window (events/windows/matches counters + the
    // events-per-window histogram), so the allocation-free §5.1 hot loop
    // stays atomic-free. nullptr (the default) disables it.
    void bind_obs(obs::Shard* shard) noexcept { obs_ = shard; }

    // Smallest δ over active matches, or -1 if none (diagnostics only).
    int min_delta() const;

private:
    struct BoundEvent {
        event::Seq seq;
        std::uint16_t elem;
        std::int16_t member;  // -1 unless a SET member binding
    };

    // Pool slot. The vectors are recycled: releasing a match clears them but
    // keeps their capacity, so re-acquiring a slot binds without malloc.
    struct PartialMatch {
        MatchId id = 0;
        std::size_t elem = 0;          // current element index
        bool plus_entered = false;     // current Plus absorbed >= 1 event
        bool complete = false;
        std::uint32_t gen = 0;         // bumped on release; stale handles throw
        int delta = 0;                 // δ cache: delta_of(state after last step)
        // Matched members of the current Set element, one bit per member
        // (multi-word: Q3-style sets can exceed 64 members).
        std::vector<std::uint64_t> set_mask;
        std::vector<BoundEvent> bound;
        std::vector<const event::Event*> slots;  // binding slot -> first event

        bool set_bit(std::size_t j) const {
            const std::size_t w = j / 64;
            return w < set_mask.size() && ((set_mask[w] >> (j % 64)) & 1u);
        }
        void mark_bit(std::size_t j, std::size_t total) {
            set_mask.resize((total + 63) / 64, 0);
            set_mask[j / 64] |= 1ull << (j % 64);
        }
        int set_count() const;
    };

    // Generation-checked reference into pool_: catches use of a handle whose
    // slot was recycled (the pooled equivalent of a dangling pointer).
    struct Handle {
        std::uint32_t idx = 0;
        std::uint32_t gen = 0;
    };

    enum class StepResult { NoMatch, Bound, Completed, GuardAbandoned };

    Handle acquire();
    void release(Handle h);
    PartialMatch& deref(Handle h);

    int delta_of(const PartialMatch& m) const;
    bool match_done(const PartialMatch& m) const;
    bool try_enter(PartialMatch& m, std::size_t elem, const event::Event& e,
                   Feedback& fb);
    StepResult step(PartialMatch& m, const event::Event& e, Feedback& fb);
    void bind(PartialMatch& m, std::size_t elem, int member, int slot,
              const event::Event& e, Feedback& fb);
    void complete_match(Handle h, Feedback& fb);
    // Builds the successor match carrying the sticky prefix of `m`, if the
    // pattern has one and none of its events were consumed (appended to
    // spawned_).
    void spawn_sticky_successor(const PartialMatch& m, Feedback& fb);
    bool match_limit_reached() const;

    // --- predicate / payload evaluation (mode switch) -----------------------
    bool eval_entry(const query::Expr& tree, const ExprProgram& prog,
                    const PartialMatch& m, const event::Event* current);
    double eval_payload(std::size_t i, const PartialMatch& m, bool& ok);

    // --- per-window consumed set (window-relative bitmap) -------------------
    bool consumed_here(event::Seq seq) const {
        const std::uint64_t off = seq - win_.first;
        return (consumed_bits_[off / 64] >> (off % 64)) & 1u;
    }
    void mark_consumed(event::Seq seq) {
        const std::uint64_t off = seq - win_.first;
        consumed_bits_[off / 64] |= 1ull << (off % 64);
    }

    const CompiledQuery* cq_;
    EvalMode mode_;
    query::WindowInfo win_{};

    // Pool storage: deque gives stable references, so acquiring a slot never
    // invalidates a PartialMatch& held across the call.
    std::deque<PartialMatch> pool_;
    std::vector<std::uint32_t> free_;
    std::vector<Handle> active_;   // live matches in creation order
    std::vector<Handle> spawned_;  // sticky successors, appended after the pass

    std::vector<std::uint64_t> consumed_bits_;  // window-relative, grow-only

    // Per-event scratch (cleared, never reallocated in steady state).
    std::vector<event::Seq> newly_consumed_;
    std::vector<event::Seq> consumed_scratch_;  // complete_match sort buffer
    Feedback trial_fb_;
    EvalScratch eval_scratch_;

    MatchId next_id_ = 1;
    int matches_started_ = 0;

    // Metrics (window-granularity, see bind_obs).
    obs::Shard* obs_ = nullptr;
    std::uint64_t obs_window_events_ = 0;
    std::uint64_t obs_window_matches_ = 0;
};

}  // namespace spectre::detect
