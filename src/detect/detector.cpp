#include "detect/detector.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace spectre::detect {

void Feedback::clear() {
    created.clear();
    bound.clear();
    completed.clear();
    abandoned.clear();
    transitions.clear();
}

bool Feedback::empty() const {
    return created.empty() && bound.empty() && completed.empty() && abandoned.empty() &&
           transitions.empty();
}

Detector::Detector(const CompiledQuery* cq) : cq_(cq) {
    SPECTRE_REQUIRE(cq != nullptr, "Detector needs a compiled query");
}

void Detector::begin_window(const query::WindowInfo& w) {
    win_ = w;
    matches_.clear();
    local_consumed_.clear();
    matches_started_ = 0;
    // MatchIds keep increasing across begin_window calls so a rolled-back
    // window version never reuses an id — engines map ids to consumption
    // groups and must be able to tell re-created matches apart.
}

int Detector::min_delta() const {
    int best = -1;
    for (const auto& m : matches_) {
        const int d = delta_of(m);
        if (best < 0 || d < best) best = d;
    }
    return best;
}

int Detector::delta_of(const PartialMatch& m) const {
    const auto& elements = cq_->pattern().elements;
    int delta = 0;
    for (std::size_t i = m.elem; i < elements.size(); ++i) {
        const auto& el = elements[i];
        switch (el.kind) {
            case query::ElementKind::Single:
                delta += 1;
                break;
            case query::ElementKind::Plus:
                // A Plus that already absorbed an event needs nothing more
                // (it can exit via the next element).
                delta += (i == m.elem && m.plus_entered) ? 0 : 1;
                break;
            case query::ElementKind::Set: {
                const auto total = static_cast<int>(el.members.size());
                if (i == m.elem)
                    delta += total - m.set_count();
                else
                    delta += total;
                break;
            }
        }
    }
    return delta;
}

bool Detector::match_done(const PartialMatch& m) const {
    const auto& els = cq_->pattern().elements;
    if (m.elem >= els.size()) return true;
    // A trailing Plus completes on its first absorption (min-match).
    return m.elem == els.size() - 1 && els[m.elem].kind == query::ElementKind::Plus &&
           m.plus_entered;
}

query::EvalContext Detector::ctx(const PartialMatch& m, const event::Event* current) const {
    query::EvalContext c;
    c.current = current;
    c.bound = m.slots;
    return c;
}

bool Detector::match_limit_reached() const {
    const int limit = cq_->query().max_matches_per_window;
    return limit > 0 && matches_started_ >= limit;
}

void Detector::bind(PartialMatch& m, std::size_t elem, int member, int slot,
                    const event::Event& e, Feedback& fb) {
    m.bound.push_back(BoundEvent{e.seq, static_cast<std::uint16_t>(elem),
                                 static_cast<std::int16_t>(member)});
    const auto uslot = static_cast<std::size_t>(slot);
    if (m.slots[uslot] == nullptr) m.slots[uslot] = &e;
    // An element's own slot additionally tracks its first event even when the
    // binding came through a SET member.
    if (member >= 0) {
        const auto eslot = static_cast<std::size_t>(cq_->pattern().element_slot(elem));
        if (m.slots[eslot] == nullptr) m.slots[eslot] = &e;
    }
    fb.bound.push_back(Feedback::Bound{m.id, e.seq, cq_->consumes(elem, member), delta_of(m)});
}

bool Detector::try_enter(PartialMatch& m, std::size_t elem, const event::Event& e,
                         Feedback& fb) {
    const auto& el = cq_->pattern().elements[elem];
    switch (el.kind) {
        case query::ElementKind::Single:
            if (!query::eval_bool(el.pred, ctx(m, &e))) return false;
            m.elem = elem;
            bind(m, elem, -1, cq_->pattern().element_slot(elem), e, fb);
            m.elem = elem + 1;
            m.plus_entered = false;
            m.set_mask.clear();
            return true;
        case query::ElementKind::Plus:
            if (!query::eval_bool(el.pred, ctx(m, &e))) return false;
            m.elem = elem;
            bind(m, elem, -1, cq_->pattern().element_slot(elem), e, fb);
            m.plus_entered = true;
            m.set_mask.clear();
            return true;
        case query::ElementKind::Set: {
            for (std::size_t j = 0; j < el.members.size(); ++j) {
                if (elem == m.elem && m.set_bit(j)) continue;
                if (!query::eval_bool(el.members[j].pred, ctx(m, &e))) continue;
                if (elem != m.elem) m.set_mask.clear();
                m.elem = elem;
                m.mark_bit(j, el.members.size());
                bind(m, elem, static_cast<int>(j),
                     cq_->pattern().member_slot(elem, j), e, fb);
                if (m.set_count() == static_cast<int>(el.members.size())) {
                    m.elem = elem + 1;
                    m.set_mask.clear();
                    m.plus_entered = false;
                }
                return true;
            }
            return false;
        }
    }
    return false;
}

Detector::StepResult Detector::step(PartialMatch& m, const event::Event& e, Feedback& fb) {
    const auto& elements = cq_->pattern().elements;
    SPECTRE_CHECK(m.elem < elements.size(), "stepping a completed match");
    const auto& cur = elements[m.elem];

    if (cur.guard && query::eval_bool(cur.guard, ctx(m, &e))) return StepResult::GuardAbandoned;

    // Advance-first: an entered Plus prefers handing the event to the next
    // element over absorbing it (DESIGN.md §5).
    if (cur.kind == query::ElementKind::Plus && m.plus_entered &&
        m.elem + 1 < elements.size()) {
        if (try_enter(m, m.elem + 1, e, fb))
            return match_done(m) ? StepResult::Completed : StepResult::Bound;
    }

    const std::size_t elem_before = m.elem;
    if (try_enter(m, elem_before, e, fb))
        return match_done(m) ? StepResult::Completed : StepResult::Bound;
    return StepResult::NoMatch;
}

void Detector::spawn_sticky_successor(const PartialMatch& m, Feedback& fb,
                                      std::vector<PartialMatch>& spawned) {
    const auto& elements = cq_->pattern().elements;
    std::size_t prefix = 0;
    while (prefix < elements.size() && elements[prefix].sticky) ++prefix;
    if (prefix == 0) return;

    PartialMatch s;
    s.id = next_id_;
    s.elem = prefix;
    s.slots.assign(static_cast<std::size_t>(cq_->binding_count()), nullptr);
    for (std::size_t i = 0; i < prefix; ++i) {
        const auto slot = static_cast<std::size_t>(cq_->pattern().element_slot(i));
        const event::Event* e = m.slots[slot];
        SPECTRE_CHECK(e != nullptr, "sticky element unbound in a completed match");
        // A consumed sticky event cannot be correlated again.
        if (local_consumed_.count(e->seq)) return;
        s.slots[slot] = e;
        s.bound.push_back(BoundEvent{e->seq, static_cast<std::uint16_t>(i), -1});
    }
    ++next_id_;  // successors do not count against max_matches_per_window
    fb.created.push_back(Feedback::Created{s.id, delta_of(s), cq_->consumes_anything()});
    for (const auto& b : s.bound)
        fb.bound.push_back(
            Feedback::Bound{s.id, b.seq, cq_->consumes(b.elem, b.member), delta_of(s)});
    spawned.push_back(std::move(s));
}

void Detector::complete_match(PartialMatch& m, Feedback& fb,
                              std::vector<PartialMatch>& spawned) {
    m.complete = true;

    event::ComplexEvent ce;
    ce.window_id = win_.id;
    ce.constituents.reserve(m.bound.size());
    for (const auto& b : m.bound) ce.constituents.push_back(b.seq);
    std::sort(ce.constituents.begin(), ce.constituents.end());

    for (const auto& def : cq_->query().payload) {
        bool ok = true;
        const double v = query::eval(*def.expr, ctx(m, nullptr), ok);
        ce.payload.emplace_back(def.name, ok ? v : 0.0);
    }

    std::vector<event::Seq> consumed;
    for (const auto& b : m.bound)
        if (cq_->consumes(b.elem, b.member)) consumed.push_back(b.seq);
    std::sort(consumed.begin(), consumed.end());
    consumed.erase(std::unique(consumed.begin(), consumed.end()), consumed.end());
    for (const auto seq : consumed) local_consumed_.insert(seq);

    fb.completed.push_back(Feedback::Completed{m.id, std::move(ce), std::move(consumed)});
    spawn_sticky_successor(m, fb, spawned);
}

void Detector::on_event(const event::Event& e, Feedback& fb) {
    SPECTRE_REQUIRE(e.seq >= win_.first && e.seq <= win_.last,
                    "event outside the current window");
    // Events consumed by an earlier completed match in this window are
    // invisible to further matching (§2.1).
    if (local_consumed_.count(e.seq)) return;

    // Events consumed by completions earlier in this very pass. Matches are
    // visited in creation order, so older matches win contended events —
    // deterministically, the way a sequential engine would resolve it.
    std::vector<event::Seq> newly_consumed;
    const auto is_newly_consumed = [&](event::Seq s) {
        return std::find(newly_consumed.begin(), newly_consumed.end(), s) !=
               newly_consumed.end();
    };
    std::vector<PartialMatch> spawned;  // sticky successors, appended after the loop

    for (auto& m : matches_) {
        if (m.complete) continue;
        if (!newly_consumed.empty()) {
            // A completion earlier in this pass consumed an event this match
            // had bound: the match can no longer become a distinct instance.
            const bool hit = std::any_of(
                m.bound.begin(), m.bound.end(),
                [&](const BoundEvent& b) { return is_newly_consumed(b.seq); });
            if (hit) {
                fb.abandoned.push_back(
                    Feedback::Abandoned{m.id, AbandonReason::ConsumedElsewhere});
                m.complete = true;
                m.bound.clear();
                continue;
            }
            if (is_newly_consumed(e.seq)) {
                // The event itself was just consumed; this match sees nothing.
                const int d = delta_of(m);
                fb.transitions.push_back(DeltaTransition{d, d});
                continue;
            }
        }
        const int d_before = delta_of(m);
        const StepResult r = step(m, e, fb);
        switch (r) {
            case StepResult::GuardAbandoned:
                fb.abandoned.push_back(Feedback::Abandoned{m.id, AbandonReason::Guard});
                m.complete = true;  // mark for removal below
                m.bound.clear();
                fb.transitions.push_back(DeltaTransition{d_before, d_before});
                break;
            case StepResult::Completed: {
                fb.transitions.push_back(DeltaTransition{d_before, 0});
                complete_match(m, fb, spawned);
                for (const auto& c : fb.completed.back().consumed)
                    newly_consumed.push_back(c);
                break;
            }
            case StepResult::Bound:
            case StepResult::NoMatch:
                fb.transitions.push_back(DeltaTransition{d_before, delta_of(m)});
                break;
        }
    }

    std::erase_if(matches_, [](const PartialMatch& m) { return m.complete; });
    for (auto& s : spawned) matches_.push_back(std::move(s));
    spawned.clear();

    // Try to start a new match with this event (selection policy permitting).
    if (!match_limit_reached() && !local_consumed_.count(e.seq)) {
        PartialMatch trial;
        trial.id = next_id_;
        trial.slots.assign(static_cast<std::size_t>(cq_->binding_count()), nullptr);
        Feedback trial_fb;
        if (try_enter(trial, 0, e, trial_fb)) {
            ++next_id_;
            ++matches_started_;
            fb.created.push_back(
                Feedback::Created{trial.id, delta_of(trial), cq_->consumes_anything()});
            fb.transitions.push_back(DeltaTransition{cq_->min_length(), delta_of(trial)});
            for (auto& b : trial_fb.bound) fb.bound.push_back(b);

            if (match_done(trial)) {
                complete_match(trial, fb, spawned);
                for (auto& s : spawned) matches_.push_back(std::move(s));
            } else {
                matches_.push_back(std::move(trial));
            }
        }
    }
}

void Detector::end_window(Feedback& fb) {
    for (auto& m : matches_)
        fb.abandoned.push_back(Feedback::Abandoned{m.id, AbandonReason::WindowEnd});
    matches_.clear();
}

}  // namespace spectre::detect
