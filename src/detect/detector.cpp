#include "detect/detector.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace spectre::detect {

void Feedback::clear() {
    created.clear();
    bound.clear();
    completed.clear();
    abandoned.clear();
    transitions.clear();
}

bool Feedback::empty() const {
    return created.empty() && bound.empty() && completed.empty() && abandoned.empty() &&
           transitions.empty();
}

int Detector::PartialMatch::set_count() const {
    int n = 0;
    for (const auto w : set_mask) n += std::popcount(w);
    return n;
}

Detector::Detector(const CompiledQuery* cq, EvalMode mode) : cq_(cq), mode_(mode) {
    SPECTRE_REQUIRE(cq != nullptr, "Detector needs a compiled query");
    eval_scratch_.ensure(cq->eval_stack_depth());
    consumed_bits_.assign(1, 0);  // valid (empty) view until begin_window
}

// --- pool ------------------------------------------------------------------

Detector::Handle Detector::acquire() {
    std::uint32_t idx;
    if (!free_.empty()) {
        idx = free_.back();
        free_.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(pool_.size());
        pool_.emplace_back();
    }
    PartialMatch& m = pool_[idx];
    m.id = 0;
    m.elem = 0;
    m.plus_entered = false;
    m.complete = false;
    m.set_mask.clear();
    m.bound.clear();
    m.slots.assign(static_cast<std::size_t>(cq_->binding_count()), nullptr);
    return Handle{idx, m.gen};
}

void Detector::release(Handle h) {
    PartialMatch& m = deref(h);
    ++m.gen;  // invalidate outstanding handles to this slot
    free_.push_back(h.idx);
}

Detector::PartialMatch& Detector::deref(Handle h) {
    PartialMatch& m = pool_[h.idx];
    SPECTRE_CHECK(m.gen == h.gen, "stale partial-match handle");
    return m;
}

// --- window lifecycle ------------------------------------------------------

void Detector::begin_window(const query::WindowInfo& w) {
    win_ = w;
    for (const auto h : active_) release(h);
    active_.clear();
    SPECTRE_CHECK(spawned_.empty(), "spawned matches leaked across windows");
    const std::uint64_t len = w.last - w.first + 1;
    consumed_bits_.assign((len + 63) / 64, 0);
    matches_started_ = 0;
    obs_window_events_ = 0;
    obs_window_matches_ = 0;
    // MatchIds keep increasing across begin_window calls so a rolled-back
    // window version never reuses an id — engines map ids to consumption
    // groups and must be able to tell re-created matches apart.
}

int Detector::min_delta() const {
    int best = -1;
    for (const auto h : active_) {
        const int d = delta_of(pool_[h.idx]);
        if (best < 0 || d < best) best = d;
    }
    return best;
}

int Detector::delta_of(const PartialMatch& m) const {
    // O(1) via the compile-time suffix table: the tail elements' full
    // requirements minus what the current element has already absorbed.
    int d = cq_->suffix_required(m.elem);
    const auto& elements = cq_->pattern().elements;
    if (m.elem < elements.size()) {
        const auto& el = elements[m.elem];
        if (el.kind == query::ElementKind::Plus && m.plus_entered)
            d -= 1;  // an entered Plus needs nothing more to exit
        else if (el.kind == query::ElementKind::Set)
            d -= m.set_count();
    }
    return d;
}

bool Detector::match_done(const PartialMatch& m) const {
    const auto& els = cq_->pattern().elements;
    if (m.elem >= els.size()) return true;
    // A trailing Plus completes on its first absorption (min-match).
    return m.elem == els.size() - 1 && els[m.elem].kind == query::ElementKind::Plus &&
           m.plus_entered;
}

bool Detector::match_limit_reached() const {
    const int limit = cq_->query().max_matches_per_window;
    return limit > 0 && matches_started_ >= limit;
}

// --- expression evaluation (§5.1 mode switch) ------------------------------

bool Detector::eval_entry(const query::Expr& tree, const ExprProgram& prog,
                          const PartialMatch& m, const event::Event* current) {
    if (mode_ == EvalMode::Compiled) return prog.run_bool(current, m.slots, eval_scratch_);
    query::EvalContext c;
    c.current = current;
    c.bound = m.slots;
    return query::eval_bool(tree, c);
}

double Detector::eval_payload(std::size_t i, const PartialMatch& m, bool& ok) {
    if (mode_ == EvalMode::Compiled)
        return cq_->payload_program(i).run(nullptr, m.slots, ok, eval_scratch_);
    query::EvalContext c;
    c.current = nullptr;
    c.bound = m.slots;
    return query::eval(*cq_->query().payload[i].expr, c, ok);
}

// --- matching --------------------------------------------------------------

void Detector::bind(PartialMatch& m, std::size_t elem, int member, int slot,
                    const event::Event& e, Feedback& fb) {
    m.bound.push_back(BoundEvent{e.seq, static_cast<std::uint16_t>(elem),
                                 static_cast<std::int16_t>(member)});
    const auto uslot = static_cast<std::size_t>(slot);
    if (m.slots[uslot] == nullptr) m.slots[uslot] = &e;
    // An element's own slot additionally tracks its first event even when the
    // binding came through a SET member.
    if (member >= 0) {
        const auto eslot = static_cast<std::size_t>(cq_->pattern().element_slot(elem));
        if (m.slots[eslot] == nullptr) m.slots[eslot] = &e;
    }
    fb.bound.push_back(
        Feedback::Bound{m.id, e.seq, cq_->consumes_unchecked(elem, member), delta_of(m)});
}

bool Detector::try_enter(PartialMatch& m, std::size_t elem, const event::Event& e,
                         Feedback& fb) {
    const auto& el = cq_->pattern().elements[elem];
    switch (el.kind) {
        case query::ElementKind::Single:
            if (!eval_entry(el.pred, cq_->element_program(elem), m, &e)) return false;
            m.elem = elem;
            bind(m, elem, -1, cq_->pattern().element_slot(elem), e, fb);
            m.elem = elem + 1;
            m.plus_entered = false;
            m.set_mask.clear();
            return true;
        case query::ElementKind::Plus:
            if (!eval_entry(el.pred, cq_->element_program(elem), m, &e)) return false;
            m.elem = elem;
            bind(m, elem, -1, cq_->pattern().element_slot(elem), e, fb);
            m.plus_entered = true;
            m.set_mask.clear();
            return true;
        case query::ElementKind::Set: {
            for (std::size_t j = 0; j < el.members.size(); ++j) {
                if (elem == m.elem && m.set_bit(j)) continue;
                if (!eval_entry(el.members[j].pred, cq_->member_program(elem, j), m, &e))
                    continue;
                if (elem != m.elem) m.set_mask.clear();
                m.elem = elem;
                m.mark_bit(j, el.members.size());
                bind(m, elem, static_cast<int>(j),
                     cq_->pattern().member_slot(elem, j), e, fb);
                if (m.set_count() == static_cast<int>(el.members.size())) {
                    m.elem = elem + 1;
                    m.set_mask.clear();
                    m.plus_entered = false;
                }
                return true;
            }
            return false;
        }
    }
    return false;
}

Detector::StepResult Detector::step(PartialMatch& m, const event::Event& e, Feedback& fb) {
    const auto& elements = cq_->pattern().elements;
    SPECTRE_CHECK(m.elem < elements.size(), "stepping a completed match");
    const auto& cur = elements[m.elem];

    if (cur.guard && eval_entry(cur.guard, cq_->guard_program(m.elem), m, &e))
        return StepResult::GuardAbandoned;

    // Advance-first: an entered Plus prefers handing the event to the next
    // element over absorbing it (DESIGN.md §5).
    if (cur.kind == query::ElementKind::Plus && m.plus_entered &&
        m.elem + 1 < elements.size()) {
        if (try_enter(m, m.elem + 1, e, fb))
            return match_done(m) ? StepResult::Completed : StepResult::Bound;
    }

    const std::size_t elem_before = m.elem;
    if (try_enter(m, elem_before, e, fb))
        return match_done(m) ? StepResult::Completed : StepResult::Bound;
    return StepResult::NoMatch;
}

void Detector::spawn_sticky_successor(const PartialMatch& m, Feedback& fb) {
    const auto& elements = cq_->pattern().elements;
    std::size_t prefix = 0;
    while (prefix < elements.size() && elements[prefix].sticky) ++prefix;
    if (prefix == 0) return;

    // pool_ is a deque: acquiring never invalidates `m` (a live slot).
    const Handle h = acquire();
    PartialMatch& s = deref(h);
    s.id = next_id_;
    s.elem = prefix;
    for (std::size_t i = 0; i < prefix; ++i) {
        const auto slot = static_cast<std::size_t>(cq_->pattern().element_slot(i));
        const event::Event* e = m.slots[slot];
        SPECTRE_CHECK(e != nullptr, "sticky element unbound in a completed match");
        // A consumed sticky event cannot be correlated again.
        if (consumed_here(e->seq)) {
            release(h);
            return;
        }
        s.slots[slot] = e;
        s.bound.push_back(BoundEvent{e->seq, static_cast<std::uint16_t>(i), -1});
    }
    ++next_id_;  // successors do not count against max_matches_per_window
    s.delta = delta_of(s);
    fb.created.push_back(Feedback::Created{s.id, s.delta, cq_->consumes_anything()});
    for (const auto& b : s.bound)
        fb.bound.push_back(
            Feedback::Bound{s.id, b.seq, cq_->consumes(b.elem, b.member), s.delta});
    spawned_.push_back(h);
}

void Detector::complete_match(Handle h, Feedback& fb) {
    PartialMatch& m = deref(h);
    m.complete = true;
    if (obs_) ++obs_window_matches_;

    event::ComplexEvent ce;
    ce.window_id = win_.id;
    ce.constituents.reserve(m.bound.size());
    for (const auto& b : m.bound) ce.constituents.push_back(b.seq);
    std::sort(ce.constituents.begin(), ce.constituents.end());

    // Payload names were resolved into the prototype once at compile time;
    // fill in the values (unbound reference ⇒ 0.0, exactly like the tree
    // evaluator's ok flag).
    ce.payload = cq_->payload_proto();
    for (std::size_t i = 0; i < ce.payload.size(); ++i) {
        bool ok = true;
        const double v = eval_payload(i, m, ok);
        ce.payload[i].second = ok ? v : 0.0;
    }

    consumed_scratch_.clear();
    for (const auto& b : m.bound)
        if (cq_->consumes_unchecked(b.elem, b.member)) consumed_scratch_.push_back(b.seq);
    std::sort(consumed_scratch_.begin(), consumed_scratch_.end());
    consumed_scratch_.erase(
        std::unique(consumed_scratch_.begin(), consumed_scratch_.end()),
        consumed_scratch_.end());
    for (const auto seq : consumed_scratch_) mark_consumed(seq);

    // The Completed entry owns its consumed list (it escapes to the engines);
    // the scratch keeps its capacity for the next completion.
    fb.completed.push_back(Feedback::Completed{m.id, std::move(ce), consumed_scratch_});
    spawn_sticky_successor(m, fb);
}

void Detector::on_event(const event::Event& e, Feedback& fb) {
    SPECTRE_REQUIRE(e.seq >= win_.first && e.seq <= win_.last,
                    "event outside the current window");
    if (obs_) ++obs_window_events_;  // plain member; cells touched at end_window
    // Events consumed by an earlier completed match in this window are
    // invisible to further matching (§2.1).
    if (consumed_here(e.seq)) return;

    // Events consumed by completions earlier in this very pass. Matches are
    // visited in creation order, so older matches win contended events —
    // deterministically, the way a sequential engine would resolve it.
    newly_consumed_.clear();
    const auto is_newly_consumed = [&](event::Seq s) {
        return std::find(newly_consumed_.begin(), newly_consumed_.end(), s) !=
               newly_consumed_.end();
    };
    SPECTRE_CHECK(spawned_.empty(), "spawned matches leaked across events");

    for (const Handle h : active_) {
        PartialMatch& m = deref(h);
        if (m.complete) continue;
        if (!newly_consumed_.empty()) {
            // A completion earlier in this pass consumed an event this match
            // had bound: the match can no longer become a distinct instance.
            const bool hit = std::any_of(
                m.bound.begin(), m.bound.end(),
                [&](const BoundEvent& b) { return is_newly_consumed(b.seq); });
            if (hit) {
                fb.abandoned.push_back(
                    Feedback::Abandoned{m.id, AbandonReason::ConsumedElsewhere});
                m.complete = true;
                continue;
            }
            if (is_newly_consumed(e.seq)) {
                // The event itself was just consumed; this match sees nothing.
                fb.transitions.push_back(DeltaTransition{m.delta, m.delta});
                continue;
            }
        }
        const int d_before = m.delta;  // δ cache == delta_of(current state)
        const StepResult r = step(m, e, fb);
        switch (r) {
            case StepResult::GuardAbandoned:
                fb.abandoned.push_back(Feedback::Abandoned{m.id, AbandonReason::Guard});
                m.complete = true;  // mark for removal below
                fb.transitions.push_back(DeltaTransition{d_before, d_before});
                break;
            case StepResult::Completed: {
                fb.transitions.push_back(DeltaTransition{d_before, 0});
                complete_match(h, fb);
                for (const auto& c : fb.completed.back().consumed)
                    newly_consumed_.push_back(c);
                break;
            }
            case StepResult::Bound:
            case StepResult::NoMatch:
                m.delta = delta_of(m);
                fb.transitions.push_back(DeltaTransition{d_before, m.delta});
                break;
        }
    }

    // Compact: drop completed matches (recycling their slots), then append
    // the sticky successors spawned during the pass — same visit order the
    // erase_if + push_back sequence used to produce.
    std::size_t out = 0;
    for (const Handle h : active_) {
        if (pool_[h.idx].complete)
            release(h);
        else
            active_[out++] = h;
    }
    active_.resize(out);
    for (const Handle h : spawned_) active_.push_back(h);
    spawned_.clear();

    // Try to start a new match with this event (selection policy permitting).
    if (!match_limit_reached() && !consumed_here(e.seq)) {
        const Handle th = acquire();
        PartialMatch& trial = deref(th);
        trial.id = next_id_;
        trial_fb_.clear();
        if (try_enter(trial, 0, e, trial_fb_)) {
            ++next_id_;
            ++matches_started_;
            trial.delta = delta_of(trial);
            fb.created.push_back(
                Feedback::Created{trial.id, trial.delta, cq_->consumes_anything()});
            fb.transitions.push_back(DeltaTransition{cq_->min_length(), trial.delta});
            for (const auto& b : trial_fb_.bound) fb.bound.push_back(b);

            if (match_done(trial)) {
                complete_match(th, fb);
                release(th);
                for (const Handle h : spawned_) active_.push_back(h);
                spawned_.clear();
            } else {
                active_.push_back(th);
            }
        } else {
            release(th);
        }
    }
}

void Detector::end_window(Feedback& fb) {
    for (const Handle h : active_) {
        fb.abandoned.push_back(Feedback::Abandoned{pool_[h.idx].id, AbandonReason::WindowEnd});
        release(h);
    }
    active_.clear();
    if (obs_) {
        obs_->add(obs::Series{obs::sid::kDetectorEvents}, obs_window_events_);
        obs_->add(obs::Series{obs::sid::kDetectorWindows}, 1);
        obs_->add(obs::Series{obs::sid::kDetectorMatches}, obs_window_matches_);
        obs_->observe(obs::Series{obs::sid::kDetectorWindowEvents}, obs_window_events_);
        obs_window_events_ = 0;
        obs_window_matches_ = 0;
    }
}

}  // namespace spectre::detect
