#include "detect/expr_program.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::detect {

using query::BinOp;
using query::ExprNode;
using query::UnOp;

namespace {

OpCode arith_op(BinOp op) {
    switch (op) {
        case BinOp::Add: return OpCode::Add;
        case BinOp::Sub: return OpCode::Sub;
        case BinOp::Mul: return OpCode::Mul;
        case BinOp::Div: return OpCode::Div;
        case BinOp::Lt: return OpCode::Lt;
        case BinOp::Le: return OpCode::Le;
        case BinOp::Gt: return OpCode::Gt;
        case BinOp::Ge: return OpCode::Ge;
        case BinOp::Eq: return OpCode::Eq;
        case BinOp::Ne: return OpCode::Ne;
        default: break;
    }
    SPECTRE_CHECK(false, "logical operator reached arith_op");
}

bool cmp_kind_of(BinOp op, CmpKind& out) {
    switch (op) {
        case BinOp::Lt: out = CmpKind::Lt; return true;
        case BinOp::Le: out = CmpKind::Le; return true;
        case BinOp::Gt: out = CmpKind::Gt; return true;
        case BinOp::Ge: out = CmpKind::Ge; return true;
        case BinOp::Eq: out = CmpKind::Eq; return true;
        case BinOp::Ne: out = CmpKind::Ne; return true;
        default: return false;
    }
}

std::size_t node_count(const ExprNode& e) {
    std::size_t n = 1;
    if (e.lhs) n += node_count(*e.lhs);
    if (e.rhs) n += node_count(*e.rhs);
    return n;
}

// An op whose result is always {0|1, ok=true}: the closing Boolize of an
// And/Or whose rhs ends in one of these is a no-op and gets elided.
bool canonical_bool(OpCode c) {
    switch (c) {
        case OpCode::Boolize:
        case OpCode::TypeIs:
        case OpCode::SubjectIn:
        case OpCode::CmpAC:
        case OpCode::CmpAA:
            return true;
        default:
            return false;
    }
}

// And-variant of a jump-threadable producing op (Invalid sentinel: Const).
OpCode and_variant(OpCode c) {
    switch (c) {
        case OpCode::CmpAC: return OpCode::AndCmpAC;
        case OpCode::CmpAA: return OpCode::AndCmpAA;
        case OpCode::CmpAB: return OpCode::AndCmpAB;
        case OpCode::CmpBA: return OpCode::AndCmpBA;
        case OpCode::CmpBC: return OpCode::AndCmpBC;
        case OpCode::CmpABC: return OpCode::AndCmpABC;
        case OpCode::TypeIs: return OpCode::AndTypeIs;
        case OpCode::SubjectIn: return OpCode::AndSubjectIn;
        default: return OpCode::Const;
    }
}

}  // namespace

ExprProgram ExprProgram::compile(const query::Expr& e) {
    SPECTRE_REQUIRE(e != nullptr, "ExprProgram::compile on null expression");
    ExprProgram p;
    p.depth_ = p.emit(*e);
    SPECTRE_CHECK(p.ops_.size() <= UINT16_MAX, "expression too large to compile");
    // Record the binding slots the program can dereference so run() can take
    // the no-ok fast path when all of them are bound.
    for (const auto& op : p.ops_) {
        std::uint16_t el = UINT16_MAX;
        switch (op.code) {
            case OpCode::BoundAttr:
            case OpCode::CmpAB:
            case OpCode::CmpBA:
            case OpCode::CmpBC:
            case OpCode::CmpABC:
            case OpCode::AndCmpAB:
            case OpCode::AndCmpBA:
            case OpCode::AndCmpBC:
            case OpCode::AndCmpABC:
                el = op.a;
                break;
            default:
                break;
        }
        if (el == UINT16_MAX || p.n_bound_refs_ == kTooManyRefs) continue;
        const std::uint16_t* begin = p.bound_refs_.data();
        const std::uint16_t* end = begin + p.n_bound_refs_;
        if (std::find(begin, end, el) != end) continue;
        if (p.n_bound_refs_ == kMaxTrackedRefs) {
            p.n_bound_refs_ = kTooManyRefs;  // too many: always use general loop
            continue;
        }
        p.bound_refs_[p.n_bound_refs_++] = el;
    }
    return p;
}

// Peephole fusion of the comparison shapes that dominate real predicates.
// Operand ranges are exact (lhs is ops_[lhs_start, rhs_start), rhs is
// ops_[rhs_start, end)), so a pattern can never straddle an operand boundary
// or swallow part of an And/Or subtree (those end in Boolize, which no
// pattern contains). Jump targets are unaffected: every pattern replaced here
// was emitted after the last patched jump's target.
bool ExprProgram::try_fuse(BinOp bop, std::size_t lhs_start, std::size_t rhs_start) {
    CmpKind cmp;
    if (!cmp_kind_of(bop, cmp)) return false;
    const std::size_t lhs_len = rhs_start - lhs_start;
    const std::size_t rhs_len = ops_.size() - rhs_start;
    const auto code_at = [&](std::size_t i) { return ops_[i].code; };

    Op fused;
    fused.b = static_cast<std::uint32_t>(cmp);

    if (lhs_len == 1 && code_at(lhs_start) == OpCode::Attr) {
        const Op lhs = ops_[lhs_start];
        if (rhs_len == 1 && code_at(rhs_start) == OpCode::Const) {
            fused.code = OpCode::CmpAC;
            fused.slot = lhs.slot;
            fused.value = ops_[rhs_start].value;
        } else if (rhs_len == 1 && code_at(rhs_start) == OpCode::Attr) {
            fused.code = OpCode::CmpAA;
            fused.slot = lhs.slot;
            fused.b |= static_cast<std::uint32_t>(ops_[rhs_start].slot) << 8;
        } else if (rhs_len == 1 && code_at(rhs_start) == OpCode::BoundAttr) {
            fused.code = OpCode::CmpAB;
            fused.slot = lhs.slot;
            fused.a = ops_[rhs_start].a;
            fused.b |= static_cast<std::uint32_t>(ops_[rhs_start].slot) << 8;
        } else if (rhs_len == 3 && code_at(rhs_start) == OpCode::BoundAttr &&
                   code_at(rhs_start + 1) == OpCode::Const &&
                   (code_at(rhs_start + 2) == OpCode::Add ||
                    code_at(rhs_start + 2) == OpCode::Sub)) {
            fused.code = OpCode::CmpABC;
            fused.slot = lhs.slot;
            fused.a = ops_[rhs_start].a;
            fused.b |= static_cast<std::uint32_t>(ops_[rhs_start].slot) << 8;
            if (code_at(rhs_start + 2) == OpCode::Sub) fused.b |= 1u << 16;
            fused.value = ops_[rhs_start + 1].value;
        } else {
            return false;
        }
    } else if (lhs_len == 1 && code_at(lhs_start) == OpCode::BoundAttr) {
        const Op lhs = ops_[lhs_start];
        if (rhs_len == 1 && code_at(rhs_start) == OpCode::Const) {
            fused.code = OpCode::CmpBC;
            fused.slot = lhs.slot;
            fused.a = lhs.a;
            fused.value = ops_[rhs_start].value;
        } else if (rhs_len == 1 && code_at(rhs_start) == OpCode::Attr) {
            fused.code = OpCode::CmpBA;
            fused.slot = lhs.slot;
            fused.a = lhs.a;
            fused.b |= static_cast<std::uint32_t>(ops_[rhs_start].slot) << 8;
        } else {
            return false;
        }
    } else {
        return false;
    }

    ops_.resize(lhs_start);
    ops_.push_back(fused);
    return true;
}

std::size_t ExprProgram::emit(const ExprNode& e) {
    switch (e.kind) {
        case ExprNode::Kind::Const: {
            Op op;
            op.code = OpCode::Const;
            op.value = e.value;
            ops_.push_back(op);
            return 1;
        }
        case ExprNode::Kind::Attr: {
            SPECTRE_CHECK(e.slot < event::kMaxAttrs, "attr slot out of range");
            Op op;
            op.code = OpCode::Attr;
            op.slot = static_cast<std::uint8_t>(e.slot);
            ops_.push_back(op);
            return 1;
        }
        case ExprNode::Kind::BoundAttr: {
            SPECTRE_CHECK(e.slot < event::kMaxAttrs, "attr slot out of range");
            SPECTRE_CHECK(e.element >= 0 && e.element < UINT16_MAX,
                          "bound element out of range");
            Op op;
            op.code = OpCode::BoundAttr;
            op.slot = static_cast<std::uint8_t>(e.slot);
            op.a = static_cast<std::uint16_t>(e.element);
            ops_.push_back(op);
            return 1;
        }
        case ExprNode::Kind::SubjectIn: {
            SPECTRE_CHECK(e.subjects.size() <= UINT16_MAX, "subject set too large");
            Op op;
            op.code = OpCode::SubjectIn;
            op.a = static_cast<std::uint16_t>(e.subjects.size());
            op.b = static_cast<std::uint32_t>(subjects_.size());
            // The factory already sorted + deduped; keep the invariant local
            // so the evaluator's binary search never depends on tree state.
            subjects_.insert(subjects_.end(), e.subjects.begin(), e.subjects.end());
            SPECTRE_CHECK(std::is_sorted(subjects_.end() - e.subjects.size(),
                                         subjects_.end()),
                          "SubjectIn subjects must be sorted");
            ops_.push_back(op);
            return 1;
        }
        case ExprNode::Kind::TypeIs: {
            Op op;
            op.code = OpCode::TypeIs;
            op.b = e.type;
            ops_.push_back(op);
            return 1;
        }
        case ExprNode::Kind::Unary: {
            const std::size_t d = emit(*e.lhs);
            Op op;
            op.code = e.uop == UnOp::Neg ? OpCode::Neg : OpCode::Not;
            ops_.push_back(op);
            return d;
        }
        case ExprNode::Kind::Binary: {
            if (e.bop == BinOp::And || e.bop == BinOp::Or) {
                const std::size_t dl = emit(*e.lhs);
                // Jump-thread a conjunction: fold the AndJump into the op that
                // produced the lhs, so a failed band condition costs one
                // dispatch and a passing one pushes nothing. Guarded so the
                // packed 15-bit jump target cannot overflow.
                std::size_t jump_at = ops_.size();
                bool folded = false;
                // Never fold when the lhs is itself an And/Or: its internal
                // jumps target the position right after the lhs — they expect
                // the subtree result to be pushed and control to continue
                // there, and folding would turn that landing site into the
                // outer rhs (executed with the false lhs still stacked).
                const bool lhs_is_logical =
                    e.lhs->kind == ExprNode::Kind::Binary &&
                    (e.lhs->bop == BinOp::And || e.lhs->bop == BinOp::Or);
                if (e.bop == BinOp::And && !lhs_is_logical &&
                    and_variant(ops_.back().code) != OpCode::Const &&
                    ops_.size() + 3 * node_count(*e.rhs) + 4 < (1u << 15)) {
                    ops_.back().code = and_variant(ops_.back().code);
                    jump_at = ops_.size() - 1;
                    folded = true;
                } else {
                    Op op;
                    op.code = e.bop == BinOp::And ? OpCode::AndJump : OpCode::OrJump;
                    ops_.push_back(op);
                }
                const std::size_t dr = emit(*e.rhs);
                if (!canonical_bool(ops_.back().code)) {
                    Op boolize;
                    boolize.code = OpCode::Boolize;
                    ops_.push_back(boolize);
                }
                const auto target = static_cast<std::uint16_t>(ops_.size());
                Op& j = ops_[jump_at];
                if (!folded || j.code == OpCode::AndTypeIs)
                    j.a = target;
                else if (j.code == OpCode::AndSubjectIn)
                    j.value = target;
                else
                    j.b |= static_cast<std::uint32_t>(target) << 17;
                // The rhs starts on the same stack base as the lhs (lhs was
                // popped by the jump), so the need is the max of both sides.
                return std::max({dl, dr, std::size_t{1}});
            }
            const std::size_t lhs_start = ops_.size();
            const std::size_t dl = emit(*e.lhs);
            const std::size_t rhs_start = ops_.size();
            const std::size_t dr = emit(*e.rhs);
            if (try_fuse(e.bop, lhs_start, rhs_start)) return 1;
            Op op;
            op.code = arith_op(e.bop);
            ops_.push_back(op);
            // rhs evaluates on top of the still-stacked lhs result.
            return std::max(dl, dr + 1);
        }
    }
    SPECTRE_CHECK(false, "unhandled expression kind");
}

// The evaluation loop, instantiated twice: kAllBound = true is the fast path
// taken when every referenced binding slot is known bound before the run —
// no ok bookkeeping at all (BoundAttr is the only op that can clear ok).
template <bool kAllBound>
double ExprProgram::run_impl(const event::Event* current,
                             std::span<const event::Event* const> bound, bool& ok,
                             EvalScratch& scratch) const {
    double* sv = scratch.v.data();
    std::uint8_t* sk = scratch.ok.data();
    const Op* ops = ops_.data();
    const std::size_t n = ops_.size();
    std::size_t pc = 0;
    std::size_t sp = 0;

    const auto push = [&](double v, bool v_ok) {
        sv[sp] = v;
        if constexpr (!kAllBound) sk[sp] = v_ok;
        ++sp;
    };
    // Bound event under kAllBound is non-null by precondition.
    const auto bound_at = [&](std::uint16_t el) -> const event::Event* {
        if constexpr (kAllBound) return bound[el];
        return el < bound.size() ? bound[el] : nullptr;
    };

    while (pc < n) {
        const Op& op = ops[pc];
        switch (op.code) {
            case OpCode::Const:
                push(op.value, true);
                ++pc;
                break;
            case OpCode::Attr:
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                push(current->attr(op.slot), true);
                ++pc;
                break;
            case OpCode::BoundAttr: {
                const event::Event* be = bound_at(op.a);
                if constexpr (kAllBound) {
                    push(be->attr(op.slot), true);
                } else {
                    if (be == nullptr)
                        push(0.0, false);
                    else
                        push(be->attr(op.slot), true);
                }
                ++pc;
                break;
            }
            case OpCode::SubjectIn: {
                SPECTRE_CHECK(current != nullptr,
                              "SubjectIn evaluated without current event");
                const auto* first = subjects_.data() + op.b;
                const bool hit = std::binary_search(first, first + op.a, current->subject);
                push(hit ? 1.0 : 0.0, true);
                ++pc;
                break;
            }
            case OpCode::TypeIs:
                SPECTRE_CHECK(current != nullptr, "TypeIs evaluated without current event");
                push(current->type == op.b ? 1.0 : 0.0, true);
                ++pc;
                break;
            case OpCode::Neg:
                sv[sp - 1] = -sv[sp - 1];
                ++pc;
                break;
            case OpCode::Not:
                sv[sp - 1] = sv[sp - 1] == 0.0 ? 1.0 : 0.0;
                ++pc;
                break;
            case OpCode::AndJump: {
                --sp;
                const bool truthy =
                    sv[sp] != 0.0 && (kAllBound || sk[sp]);
                if (!truthy) {
                    push(0.0, true);
                    pc = op.a;
                } else {
                    ++pc;
                }
                break;
            }
            case OpCode::OrJump: {
                --sp;
                const bool truthy =
                    sv[sp] != 0.0 && (kAllBound || sk[sp]);
                if (truthy) {
                    push(1.0, true);
                    pc = op.a;
                } else {
                    ++pc;
                }
                break;
            }
            case OpCode::Boolize: {
                const bool truthy =
                    sv[sp - 1] != 0.0 && (kAllBound || sk[sp - 1]);
                sv[sp - 1] = truthy ? 1.0 : 0.0;
                if constexpr (!kAllBound) sk[sp - 1] = 1;
                ++pc;
                break;
            }
            case OpCode::CmpAC:
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                push(apply_cmp(static_cast<CmpKind>(op.b & 0xff), current->attr(op.slot),
                               op.value),
                     true);
                ++pc;
                break;
            case OpCode::CmpAA:
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                push(apply_cmp(static_cast<CmpKind>(op.b & 0xff), current->attr(op.slot),
                               current->attr((op.b >> 8) & 0xff)),
                     true);
                ++pc;
                break;
            case OpCode::CmpAB: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const event::Event* be = bound_at(op.a);
                const double l = current->attr(op.slot);
                const double r = be ? be->attr((op.b >> 8) & 0xff) : 0.0;
                push(apply_cmp(static_cast<CmpKind>(op.b & 0xff), l, r), be != nullptr);
                ++pc;
                break;
            }
            case OpCode::CmpBA: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const event::Event* be = bound_at(op.a);
                const double l = be ? be->attr(op.slot) : 0.0;
                const double r = current->attr((op.b >> 8) & 0xff);
                push(apply_cmp(static_cast<CmpKind>(op.b & 0xff), l, r), be != nullptr);
                ++pc;
                break;
            }
            case OpCode::CmpBC: {
                const event::Event* be = bound_at(op.a);
                const double l = be ? be->attr(op.slot) : 0.0;
                push(apply_cmp(static_cast<CmpKind>(op.b & 0xff), l, op.value),
                     be != nullptr);
                ++pc;
                break;
            }
            case OpCode::CmpABC: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const event::Event* be = bound_at(op.a);
                const double b0 = be ? be->attr((op.b >> 8) & 0xff) : 0.0;
                const double r = (op.b & (1u << 16)) ? b0 - op.value : b0 + op.value;
                push(apply_cmp(static_cast<CmpKind>(op.b & 0xff), current->attr(op.slot), r),
                     be != nullptr);
                ++pc;
                break;
            }
            case OpCode::AndCmpAC: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const double v = apply_cmp(static_cast<CmpKind>(op.b & 0xff),
                                           current->attr(op.slot), op.value);
                if (v != 0.0) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.b >> 17;
                }
                break;
            }
            case OpCode::AndCmpAA: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const double v = apply_cmp(static_cast<CmpKind>(op.b & 0xff),
                                           current->attr(op.slot),
                                           current->attr((op.b >> 8) & 0xff));
                if (v != 0.0) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.b >> 17;
                }
                break;
            }
            case OpCode::AndCmpAB: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const event::Event* be = bound_at(op.a);
                const double r = be ? be->attr((op.b >> 8) & 0xff) : 0.0;
                const double v = apply_cmp(static_cast<CmpKind>(op.b & 0xff),
                                           current->attr(op.slot), r);
                if (v != 0.0 && (kAllBound || be != nullptr)) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.b >> 17;
                }
                break;
            }
            case OpCode::AndCmpBA: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const event::Event* be = bound_at(op.a);
                const double l = be ? be->attr(op.slot) : 0.0;
                const double v = apply_cmp(static_cast<CmpKind>(op.b & 0xff), l,
                                           current->attr((op.b >> 8) & 0xff));
                if (v != 0.0 && (kAllBound || be != nullptr)) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.b >> 17;
                }
                break;
            }
            case OpCode::AndCmpBC: {
                const event::Event* be = bound_at(op.a);
                const double l = be ? be->attr(op.slot) : 0.0;
                const double v =
                    apply_cmp(static_cast<CmpKind>(op.b & 0xff), l, op.value);
                if (v != 0.0 && (kAllBound || be != nullptr)) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.b >> 17;
                }
                break;
            }
            case OpCode::AndCmpABC: {
                SPECTRE_CHECK(current != nullptr, "Attr evaluated without current event");
                const event::Event* be = bound_at(op.a);
                const double b0 = be ? be->attr((op.b >> 8) & 0xff) : 0.0;
                const double r = (op.b & (1u << 16)) ? b0 - op.value : b0 + op.value;
                const double v = apply_cmp(static_cast<CmpKind>(op.b & 0xff),
                                           current->attr(op.slot), r);
                if (v != 0.0 && (kAllBound || be != nullptr)) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.b >> 17;
                }
                break;
            }
            case OpCode::AndTypeIs: {
                SPECTRE_CHECK(current != nullptr, "TypeIs evaluated without current event");
                if (current->type == op.b) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = op.a;
                }
                break;
            }
            case OpCode::AndSubjectIn: {
                SPECTRE_CHECK(current != nullptr,
                              "SubjectIn evaluated without current event");
                const auto* first = subjects_.data() + op.b;
                if (std::binary_search(first, first + op.a, current->subject)) {
                    ++pc;
                } else {
                    push(0.0, true);
                    pc = static_cast<std::size_t>(op.value);
                }
                break;
            }
            default: {
                const double r = sv[--sp];
                const double l = sv[sp - 1];
                double out = 0.0;
                switch (op.code) {
                    case OpCode::Add: out = l + r; break;
                    case OpCode::Sub: out = l - r; break;
                    case OpCode::Mul: out = l * r; break;
                    case OpCode::Div: out = l / r; break;
                    case OpCode::Lt: out = l < r ? 1.0 : 0.0; break;
                    case OpCode::Le: out = l <= r ? 1.0 : 0.0; break;
                    case OpCode::Gt: out = l > r ? 1.0 : 0.0; break;
                    case OpCode::Ge: out = l >= r ? 1.0 : 0.0; break;
                    case OpCode::Eq: out = l == r ? 1.0 : 0.0; break;
                    case OpCode::Ne: out = l != r ? 1.0 : 0.0; break;
                    default: SPECTRE_CHECK(false, "unhandled opcode");
                }
                sv[sp - 1] = out;
                if constexpr (!kAllBound) sk[sp - 1] = sk[sp - 1] && sk[sp];
                ++pc;
                break;
            }
        }
    }

    SPECTRE_CHECK(sp == 1, "program left a non-singleton stack");
    if constexpr (kAllBound) return sv[0];
    ok = ok && sk[0] != 0;
    return sv[0];
}

// run() lives in the header; the loop bodies are instantiated here once.
template double ExprProgram::run_impl<true>(const event::Event*,
                                            std::span<const event::Event* const>,
                                            bool&, EvalScratch&) const;
template double ExprProgram::run_impl<false>(const event::Event*,
                                             std::span<const event::Event* const>,
                                             bool&, EvalScratch&) const;

}  // namespace spectre::detect
