#include "detect/compiled_query.hpp"

#include "util/assert.hpp"

namespace spectre::detect {

CompiledQuery CompiledQuery::compile(query::Query q) {
    q.validate();
    CompiledQuery cq;
    cq.q_ = std::move(q);

    const auto& pattern = cq.q_.pattern;
    const auto& policy = cq.q_.consumption;
    cq.consume_element_.assign(pattern.elements.size(), 0);
    cq.consume_member_.resize(pattern.elements.size());
    for (std::size_t i = 0; i < pattern.elements.size(); ++i)
        cq.consume_member_[i].assign(pattern.elements[i].members.size(), 0);

    switch (policy.kind) {
        case query::ConsumptionPolicy::Kind::None:
            break;
        case query::ConsumptionPolicy::Kind::All:
            for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
                cq.consume_element_[i] = 1;
                for (auto& m : cq.consume_member_[i]) m = 1;
            }
            break;
        case query::ConsumptionPolicy::Kind::Subset:
            for (const auto& name : policy.elements) {
                for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
                    const auto& el = pattern.elements[i];
                    if (el.name == name) {
                        // Naming an element consumes the whole element,
                        // including every SET member under it.
                        cq.consume_element_[i] = 1;
                        for (auto& m : cq.consume_member_[i]) m = 1;
                    }
                    for (std::size_t j = 0; j < el.members.size(); ++j)
                        if (el.members[j].name == name) cq.consume_member_[i][j] = 1;
                }
            }
            break;
    }

    for (std::size_t i = 0; i < cq.consume_element_.size(); ++i) {
        if (cq.consume_element_[i]) cq.consumes_anything_ = true;
        for (const auto m : cq.consume_member_[i])
            if (m) cq.consumes_anything_ = true;
    }

    cq.min_length_ = pattern.min_length();
    cq.binding_count_ = pattern.binding_count();

    // §5.1: lower every expression the detector evaluates into bytecode and
    // record the worst-case value-stack need across all of them.
    const auto track = [&cq](const ExprProgram& p) {
        if (p.stack_depth() > cq.eval_stack_depth_) cq.eval_stack_depth_ = p.stack_depth();
    };
    cq.element_programs_.resize(pattern.elements.size());
    cq.guard_programs_.resize(pattern.elements.size());
    cq.member_programs_.resize(pattern.elements.size());
    for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
        const auto& el = pattern.elements[i];
        if (el.pred) {
            cq.element_programs_[i] = ExprProgram::compile(el.pred);
            track(cq.element_programs_[i]);
        }
        if (el.guard) {
            cq.guard_programs_[i] = ExprProgram::compile(el.guard);
            track(cq.guard_programs_[i]);
        }
        cq.member_programs_[i].resize(el.members.size());
        for (std::size_t j = 0; j < el.members.size(); ++j) {
            cq.member_programs_[i][j] = ExprProgram::compile(el.members[j].pred);
            track(cq.member_programs_[i][j]);
        }
    }
    cq.payload_programs_.reserve(cq.q_.payload.size());
    cq.payload_proto_.reserve(cq.q_.payload.size());
    for (const auto& def : cq.q_.payload) {
        cq.payload_programs_.push_back(ExprProgram::compile(def.expr));
        track(cq.payload_programs_.back());
        cq.payload_proto_.emplace_back(def.name, 0.0);
    }

    // Suffix requirement sums: δ(m) = suffix_required_[m.elem] minus what the
    // current element has already absorbed (detector.cpp, delta_of).
    cq.suffix_required_.assign(pattern.elements.size() + 1, 0);
    for (std::size_t i = pattern.elements.size(); i-- > 0;) {
        const auto& el = pattern.elements[i];
        const int req = el.kind == query::ElementKind::Set
                            ? static_cast<int>(el.members.size())
                            : 1;
        cq.suffix_required_[i] = cq.suffix_required_[i + 1] + req;
    }
    return cq;
}

bool CompiledQuery::consumes(std::size_t elem, int member) const {
    SPECTRE_REQUIRE(elem < consume_element_.size(), "element index out of range");
    if (member < 0) return consume_element_[elem] != 0;
    const auto& members = consume_member_[elem];
    SPECTRE_REQUIRE(static_cast<std::size_t>(member) < members.size(),
                    "member index out of range");
    return consume_element_[elem] != 0 || members[static_cast<std::size_t>(member)] != 0;
}

}  // namespace spectre::detect
