// CompiledQuery: a Query post-processed for the hot matching path.
//
// Compilation resolves the consumption policy into per-element / per-member
// flags (is a binding to this element consumed when the match completes?)
// and precomputes the pattern's minimum length (the initial δ of the Markov
// model). A CompiledQuery is immutable after construction and shared by all
// operator-instance threads of an engine.
#pragma once

#include <memory>
#include <vector>

#include "query/query.hpp"

namespace spectre::detect {

class CompiledQuery {
public:
    static CompiledQuery compile(query::Query q);

    const query::Query& query() const noexcept { return q_; }
    const query::Pattern& pattern() const noexcept { return q_.pattern; }

    // Is an event bound to element `elem` (member `member`, or -1 for the
    // element itself / a Plus absorption) consumed on match completion?
    bool consumes(std::size_t elem, int member) const;

    int min_length() const noexcept { return min_length_; }
    int binding_count() const noexcept { return binding_count_; }

    // True if any binding can be consumed at all; engines without pending
    // consumption can skip the dependency machinery entirely.
    bool consumes_anything() const noexcept { return consumes_anything_; }

private:
    query::Query q_;
    std::vector<char> consume_element_;               // per element
    std::vector<std::vector<char>> consume_member_;   // per element, per member
    int min_length_ = 0;
    int binding_count_ = 0;
    bool consumes_anything_ = false;
};

}  // namespace spectre::detect
