// CompiledQuery: a Query post-processed for the hot matching path.
//
// Compilation resolves the consumption policy into per-element / per-member
// flags (is a binding to this element consumed when the match completes?),
// precomputes the pattern's minimum length (the initial δ of the Markov
// model), lowers every element predicate, Set-member predicate, negation
// guard and payload expression into a flat ExprProgram (DESIGN.md §5.1), and
// precomputes the suffix-requirement table that makes the detector's δ
// computation O(1). A CompiledQuery is immutable after construction and
// shared by all operator-instance threads of an engine.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "detect/expr_program.hpp"
#include "query/query.hpp"

namespace spectre::detect {

class CompiledQuery {
public:
    static CompiledQuery compile(query::Query q);

    const query::Query& query() const noexcept { return q_; }
    const query::Pattern& pattern() const noexcept { return q_.pattern; }

    // Is an event bound to element `elem` (member `member`, or -1 for the
    // element itself / a Plus absorption) consumed on match completion?
    bool consumes(std::size_t elem, int member) const;

    // Unchecked variant for the detector's inner loop, where the indices come
    // from the pattern itself and are valid by construction.
    bool consumes_unchecked(std::size_t elem, int member) const noexcept {
        if (member < 0) return consume_element_[elem] != 0;
        return consume_element_[elem] != 0 ||
               consume_member_[elem][static_cast<std::size_t>(member)] != 0;
    }

    int min_length() const noexcept { return min_length_; }
    int binding_count() const noexcept { return binding_count_; }

    // True if any binding can be consumed at all; engines without pending
    // consumption can skip the dependency machinery entirely.
    bool consumes_anything() const noexcept { return consumes_anything_; }

    // --- compiled predicate programs (§5.1) ---------------------------------
    // One program per Single/Plus element predicate (invalid for Set).
    const ExprProgram& element_program(std::size_t elem) const {
        return element_programs_[elem];
    }
    // One program per Set member predicate.
    const ExprProgram& member_program(std::size_t elem, std::size_t member) const {
        return member_programs_[elem][member];
    }
    // Negation guard program; !valid() when the element has no guard.
    const ExprProgram& guard_program(std::size_t elem) const {
        return guard_programs_[elem];
    }
    // One program per payload definition (same order as query().payload).
    const ExprProgram& payload_program(std::size_t i) const {
        return payload_programs_[i];
    }
    // Max value-stack need over every program of this query; evaluators size
    // their EvalScratch once from this.
    std::size_t eval_stack_depth() const noexcept { return eval_stack_depth_; }

    // Σ of per-element event requirements from element `elem` to the end
    // (elem == elements.size() → 0): Single/Plus contribute 1, Set its member
    // count. The detector derives δ from this in O(1).
    int suffix_required(std::size_t elem) const { return suffix_required_[elem]; }

    // Prototype payload vector — names resolved once here so completing a
    // match copies a prebuilt {name, 0.0} vector and fills in the values
    // instead of re-copying PayloadDef strings one by one.
    const std::vector<std::pair<std::string, double>>& payload_proto() const noexcept {
        return payload_proto_;
    }

private:
    query::Query q_;
    std::vector<char> consume_element_;               // per element
    std::vector<std::vector<char>> consume_member_;   // per element, per member
    int min_length_ = 0;
    int binding_count_ = 0;
    bool consumes_anything_ = false;

    std::vector<ExprProgram> element_programs_;
    std::vector<ExprProgram> guard_programs_;
    std::vector<std::vector<ExprProgram>> member_programs_;
    std::vector<ExprProgram> payload_programs_;
    std::vector<int> suffix_required_;  // size elements()+1, last entry 0
    std::vector<std::pair<std::string, double>> payload_proto_;
    std::size_t eval_stack_depth_ = 0;
};

}  // namespace spectre::detect
