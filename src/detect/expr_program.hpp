// ExprProgram: predicate / payload expressions lowered to flat bytecode.
//
// The tree evaluator (query/predicate.hpp) walks a shared_ptr<const ExprNode>
// graph — every node is a pointer chase and a recursive call, paid per active
// match per event in the detector's inner loop. An ExprProgram is the same
// expression lowered once, at CompiledQuery::compile time, into a contiguous
// postfix op vector (constants inlined into the ops, SubjectIn sets in one
// side pool) executed by a small fixed-size value stack: no recursion, no
// shared_ptr dereference chains, no allocation at eval time (DESIGN.md §5.1).
//
// Two compile-time optimizations carry the speedup over the tree:
//   * peephole fusion — the comparison shapes that dominate real predicates
//     (attr⋈const, attr⋈attr, attr⋈bound, attr⋈bound±const, bound⋈const)
//     collapse into single superops, so the common 3-to-5-node subtree costs
//     one dispatch instead of three to five;
//   * an all-bound fast path — the program records which binding slots its
//     BoundAttr ops reference; when every one is bound (the overwhelmingly
//     common case mid-match) evaluation runs a loop with no ok-bit tracking
//     at all. Otherwise the general loop tracks a per-value ok bit.
//
// Semantics are bit-identical to query::eval / eval_bool, including:
//   * unbound BoundAttr short-circuit — an unbound reference contributes
//     0.0 with ok=false, propagating exactly like eval()'s by-ref `ok`
//     (predicate → false, payload → 0.0);
//   * And/Or short-circuit via jump ops, so a subtree the tree evaluator
//     never visits is never executed here either (same crash/check behavior,
//     same ok scoping: a logical op always yields {0|1, ok=true});
//   * IEEE division (div-by-zero → ±inf/NaN) and comparison results exactly
//     as the tree computes them.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "query/predicate.hpp"
#include "util/assert.hpp"

namespace spectre::detect {

enum class OpCode : std::uint8_t {
    Const,      // push {value, true}
    Attr,       // push {current->attr(slot), true}
    BoundAttr,  // push {bound[a]->attr(slot), true} or {0.0, false} if unbound
    SubjectIn,  // push {current->subject ∈ subjects[b, b+a), true}
    TypeIs,     // push {current->type == b, true}
    Neg,        // top.v = -top.v           (ok unchanged)
    Not,        // top.v = (v==0 ? 1 : 0)   (ok unchanged)
    Add, Sub, Mul, Div,              // pop r, pop l → push {l∘r, l.ok && r.ok}
    Lt, Le, Gt, Ge, Eq, Ne,          // pop r, pop l → push {0|1, l.ok && r.ok}
    AndJump,    // pop l; if !(l.ok && l.v!=0) push {0.0, true}, pc = a
    OrJump,     // pop l; if  (l.ok && l.v!=0) push {1.0, true}, pc = a
    Boolize,    // top = {top.ok && top.v!=0 ? 1 : 0, true}  (closes And/Or rhs)
    // --- fused superops (peephole, §5.1) -----------------------------------
    CmpAC,      // push attr(slot) ⋈ value                       (⋈ in b)
    CmpAA,      // push attr(slot) ⋈ attr(b>>8)
    CmpAB,      // push attr(slot) ⋈ bound[a].attr(b>>8)         (ok from bound)
    CmpBA,      // push bound[a].attr(slot) ⋈ attr(b>>8)         (ok from bound)
    CmpBC,      // push bound[a].attr(slot) ⋈ value              (ok from bound)
    CmpABC,     // push attr(slot) ⋈ (bound[a].attr(b>>8) ± value); ± in b>>16
    // --- jump-threaded conjunction superops (§5.1) -------------------------
    // The And-lhs test folded into the producing op: truthy → fall through
    // pushing nothing; false/unbound → push {0.0, true}, pc = jump target.
    // Target lives in b bits 17..31 (AndTypeIs: in a; AndSubjectIn: in value).
    AndCmpAC, AndCmpAA, AndCmpAB, AndCmpBA, AndCmpBC, AndCmpABC,
    AndTypeIs, AndSubjectIn,
};

// Comparison kind carried in the low byte of Op::b for the fused superops.
enum class CmpKind : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

// One 16-byte instruction; `value` doubles as the inline constant pool.
struct Op {
    OpCode code = OpCode::Const;
    std::uint8_t slot = 0;   // Attr/BoundAttr/fused: first schema attribute slot
    std::uint16_t a = 0;     // BoundAttr/fused: element · jumps: target · SubjectIn: count
    std::uint32_t b = 0;     // TypeIs: type · SubjectIn: offset · fused: cmp|slot2<<8|sub<<16
    double value = 0.0;      // Const / fused constant operand
};

// Per-evaluator scratch: one value stack reused across every program of a
// query (sized once from CompiledQuery::eval_stack_depth). Parallel arrays
// rather than an array-of-pairs keep the doubles densely packed.
struct EvalScratch {
    std::vector<double> v;
    std::vector<std::uint8_t> ok;

    void ensure(std::size_t depth) {
        if (v.size() < depth) {
            v.resize(depth);
            ok.resize(depth);
        }
    }
};

class ExprProgram {
public:
    ExprProgram() = default;  // invalid (absent guard)

    // Lowers `e` (must be non-null) into a program.
    static ExprProgram compile(const query::Expr& e);

    bool valid() const noexcept { return !ops_.empty(); }
    std::size_t size() const noexcept { return ops_.size(); }
    // Value-stack slots an evaluation needs (EvalScratch must be ≥ this).
    std::size_t stack_depth() const noexcept { return depth_; }

    // Numeric evaluation against the same context shape as query::eval:
    // `current` is the event under test (null for payloads), `bound` the
    // per-binding-slot first events. On an unbound reference on an evaluated
    // non-logical path, `ok` is set false (never reset to true). Inline so
    // the per-call preamble (scratch sizing + all-bound precheck) fuses into
    // the detector's inner loop.
    double run(const event::Event* current, std::span<const event::Event* const> bound,
               bool& ok, EvalScratch& scratch) const {
        SPECTRE_CHECK(valid(), "running an empty ExprProgram");
        scratch.ensure(depth_);
        // Fast path: every referenced binding slot bound ⇒ ok can never turn
        // false ⇒ skip ok bookkeeping entirely. (An unevaluated short-
        // circuited BoundAttr makes the precheck conservative, never wrong.)
        bool all_bound = n_bound_refs_ != kTooManyRefs;
        for (std::uint8_t i = 0; all_bound && i < n_bound_refs_; ++i) {
            const auto el = bound_refs_[i];
            all_bound = el < bound.size() && bound[el] != nullptr;
        }
        if (all_bound) return run_impl<true>(current, bound, ok, scratch);
        return run_impl<false>(current, bound, ok, scratch);
    }

    // Truthiness with unbound references mapping to false (query::eval_bool).
    // Single-op programs (a bare TypeIs / SubjectIn / fused comparison — the
    // whole of Q1's REs and Q3's members) skip the stack machine entirely.
    bool run_bool(const event::Event* current,
                  std::span<const event::Event* const> bound,
                  EvalScratch& scratch) const {
        if (ops_.size() == 1) {
            const Op& op = ops_[0];
            switch (op.code) {
                case OpCode::TypeIs:
                    SPECTRE_CHECK(current != nullptr,
                                  "TypeIs evaluated without current event");
                    return current->type == op.b;
                case OpCode::SubjectIn: {
                    SPECTRE_CHECK(current != nullptr,
                                  "SubjectIn evaluated without current event");
                    const auto* first = subjects_.data() + op.b;
                    return std::binary_search(first, first + op.a, current->subject);
                }
                case OpCode::CmpAC:
                    SPECTRE_CHECK(current != nullptr,
                                  "Attr evaluated without current event");
                    return cmp_op(op.b, current->attr(op.slot), op.value);
                case OpCode::CmpAA:
                    SPECTRE_CHECK(current != nullptr,
                                  "Attr evaluated without current event");
                    return cmp_op(op.b, current->attr(op.slot),
                                  current->attr((op.b >> 8) & 0xff));
                case OpCode::CmpAB: {
                    SPECTRE_CHECK(current != nullptr,
                                  "Attr evaluated without current event");
                    const event::Event* be = bound_of(bound, op.a);
                    return be != nullptr &&
                           cmp_op(op.b, current->attr(op.slot),
                                  be->attr((op.b >> 8) & 0xff));
                }
                case OpCode::CmpBA: {
                    SPECTRE_CHECK(current != nullptr,
                                  "Attr evaluated without current event");
                    const event::Event* be = bound_of(bound, op.a);
                    return be != nullptr &&
                           cmp_op(op.b, be->attr(op.slot),
                                  current->attr((op.b >> 8) & 0xff));
                }
                case OpCode::CmpBC: {
                    const event::Event* be = bound_of(bound, op.a);
                    return be != nullptr && cmp_op(op.b, be->attr(op.slot), op.value);
                }
                case OpCode::CmpABC: {
                    SPECTRE_CHECK(current != nullptr,
                                  "Attr evaluated without current event");
                    const event::Event* be = bound_of(bound, op.a);
                    if (be == nullptr) return false;
                    const double b0 = be->attr((op.b >> 8) & 0xff);
                    const double r = (op.b & (1u << 16)) ? b0 - op.value : b0 + op.value;
                    return cmp_op(op.b, current->attr(op.slot), r);
                }
                default:
                    break;  // Const/Attr/BoundAttr etc.: general path below
            }
        }
        bool ok = true;
        const double v = run(current, bound, ok, scratch);
        return ok && v != 0.0;
    }

private:
    template <bool kAllBound>
    double run_impl(const event::Event* current,
                    std::span<const event::Event* const> bound, bool& ok,
                    EvalScratch& scratch) const;

    // The single comparison dispatch shared by the stack machine, the fused
    // superops, and the single-op fast path.
    static double apply_cmp(CmpKind k, double l, double r) {
        switch (k) {
            case CmpKind::Lt: return l < r ? 1.0 : 0.0;
            case CmpKind::Le: return l <= r ? 1.0 : 0.0;
            case CmpKind::Gt: return l > r ? 1.0 : 0.0;
            case CmpKind::Ge: return l >= r ? 1.0 : 0.0;
            case CmpKind::Eq: return l == r ? 1.0 : 0.0;
            case CmpKind::Ne: return l != r ? 1.0 : 0.0;
        }
        return 0.0;
    }
    // Fused-op flavor: kind in the low byte of b, boolean result.
    static bool cmp_op(std::uint32_t b, double l, double r) {
        return apply_cmp(static_cast<CmpKind>(b & 0xff), l, r) != 0.0;
    }
    static const event::Event* bound_of(std::span<const event::Event* const> bound,
                                        std::uint16_t el) {
        return el < bound.size() ? bound[el] : nullptr;
    }

    std::size_t emit(const query::ExprNode& e);  // returns subtree stack need
    bool try_fuse(query::BinOp op, std::size_t lhs_start, std::size_t rhs_start);

    std::vector<Op> ops_;
    std::vector<event::SubjectId> subjects_;   // SubjectIn pool (sorted ranges)
    // Unique binding slots the program references, inline (no heap hop on the
    // per-eval precheck). Programs with more refs than the array holds just
    // lose the fast path (n_bound_refs_ = kTooManyRefs ⇒ general loop).
    static constexpr std::size_t kMaxTrackedRefs = 8;
    static constexpr std::uint8_t kTooManyRefs = 0xff;
    std::array<std::uint16_t, kMaxTrackedRefs> bound_refs_{};
    std::uint8_t n_bound_refs_ = 0;
    std::size_t depth_ = 0;
};

}  // namespace spectre::detect
