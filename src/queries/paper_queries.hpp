// The paper's evaluation queries (Fig. 9) plus the running example QE
// (§2.1), as builder factories over the stock vocabulary.
//
// Q1 — a leading blue-chip quote (MLE) followed by the first q rising (or
//      falling) quotes of any symbol, within ws events of the MLE; all
//      constituents consumed. Fixed pattern length q+1: every matching event
//      advances the completion stage.
// Q2 — the 13-element chart pattern A B+ C D+ … M from Balkesen & Tatbul's
//      Query 9, over price bands [lower, upper]; variable effective length
//      (Kleene+), window ws sliding by s; all constituents consumed.
// Q3 — a designated symbol A followed by a SET of n specific symbols in any
//      order within ws events sliding by s; all constituents consumed.
// QE — "Influence(Factor)": B and A within 1 min from B … expressed in our
//      window model as: a window opens at each A quote, the first A
//      correlates with every B (sticky A), Factor = B.change / A.change;
//      consumption policy either none (Fig. 1a) or selected-B (Fig. 1b).
#pragma once

#include "data/stock.hpp"
#include "query/query.hpp"

namespace spectre::queries {

struct Q1Params {
    int q = 80;                  // pattern size (number of RE elements)
    std::uint64_t ws = 8000;     // window size in events, opened FROM MLE
    bool rising = true;          // rising (close > open) or falling variant
};
query::Query make_q1(const data::StockVocab& vocab, const Q1Params& params);

struct Q2Params {
    double lower = 95.0;         // lower price limit
    double upper = 105.0;        // upper price limit
    std::uint64_t ws = 8000;
    std::uint64_t slide = 1000;
};
query::Query make_q2(const data::StockVocab& vocab, const Q2Params& params);

struct Q3Params {
    int n = 10;                  // SET size (distinct symbols after A)
    std::uint64_t ws = 1000;
    std::uint64_t slide = 100;
};
query::Query make_q3(const data::StockVocab& vocab, const Q3Params& params);

struct QeParams {
    std::string a_symbol = "AAPL";
    std::string b_symbol = "MSFT";
    // Window span in timestamp units ("within 1 min from" the A quote; use
    // second-resolution timestamps and 60 to reproduce Fig. 1 exactly).
    event::Timestamp window_span = 60;
    bool consume_b = true;                // Fig. 1(b) vs Fig. 1(a)
};
query::Query make_qe(const data::StockVocab& vocab, const QeParams& params);

}  // namespace spectre::queries
