#include "queries/paper_queries.hpp"

#include <string>

#include "util/assert.hpp"

namespace spectre::queries {

using query::BinOp;
using query::Expr;

namespace {

// close > open (rising) or close < open (falling).
Expr direction_pred(const data::StockVocab& v, bool rising) {
    return query::binary(rising ? BinOp::Gt : BinOp::Lt, query::attr(v.close_slot),
                         query::attr(v.open_slot));
}

Expr band_pred(const data::StockVocab& v, double lower, double upper) {
    // lower < close < upper
    return query::binary(BinOp::And,
                         query::binary(BinOp::Gt, query::attr(v.close_slot),
                                       query::constant(lower)),
                         query::binary(BinOp::Lt, query::attr(v.close_slot),
                                       query::constant(upper)));
}

Expr below_pred(const data::StockVocab& v, double limit) {
    return query::binary(BinOp::Lt, query::attr(v.close_slot), query::constant(limit));
}

Expr above_pred(const data::StockVocab& v, double limit) {
    return query::binary(BinOp::Gt, query::attr(v.close_slot), query::constant(limit));
}

}  // namespace

query::Query make_q1(const data::StockVocab& vocab, const Q1Params& params) {
    SPECTRE_REQUIRE(params.q >= 1, "Q1 needs pattern size q >= 1");
    SPECTRE_REQUIRE(params.ws >= 1, "Q1 needs window size >= 1");

    // MLE: a rising/falling quote of one of the 16 leading symbols.
    Expr mle = query::binary(BinOp::And, query::subject_in(vocab.leaders),
                             direction_pred(vocab, params.rising));

    query::QueryBuilder b(vocab.schema);
    b.single("MLE", mle);
    for (int i = 1; i <= params.q; ++i)
        b.single("RE" + std::to_string(i), direction_pred(vocab, params.rising));
    // Window opens at every MLE event ("WITHIN ws events FROM MLE").
    b.window(query::WindowSpec::predicate_open_count(mle, params.ws));
    b.consume_all();  // CONSUME (MLE RE1 ... REq)
    return b.build();
}

query::Query make_q2(const data::StockVocab& vocab, const Q2Params& params) {
    SPECTRE_REQUIRE(params.lower < params.upper, "Q2 needs lower < upper");

    const Expr below = below_pred(vocab, params.lower);
    const Expr band = band_pred(vocab, params.lower, params.upper);
    const Expr above = above_pred(vocab, params.upper);

    // PATTERN (A B+ C D+ E F+ G H+ I J+ K L+ M): prices oscillating between
    // the bands — below, through the band, above, back down, three times.
    query::QueryBuilder b(vocab.schema);
    b.single("A", below);
    b.plus("B", band);
    b.single("C", above);
    b.plus("D", band);
    b.single("E", below);
    b.plus("F", band);
    b.single("G", above);
    b.plus("H", band);
    b.single("I", below);
    b.plus("J", band);
    b.single("K", above);
    b.plus("L", band);
    b.single("M", below);
    b.window(query::WindowSpec::sliding_count(params.ws, params.slide));
    b.consume_all();
    return b.build();
}

query::Query make_q3(const data::StockVocab& vocab, const Q3Params& params) {
    SPECTRE_REQUIRE(params.n >= 1, "Q3 needs at least one SET member");

    // A is the first leader; the SET members are the next n distinct symbols
    // (leaders first, then the RAND dataset's generated tickers — Q3 is
    // evaluated on the RAND stream, §4.2.2).
    const auto symbol_at = [&](int i) -> event::SubjectId {
        if (i < static_cast<int>(vocab.leaders.size())) return vocab.leaders[(std::size_t)i];
        return vocab.schema->intern_subject("RSYM" + std::to_string(i));
    };

    query::QueryBuilder b(vocab.schema);
    b.single("A", query::subject_in({symbol_at(0)}));
    std::vector<query::SetMember> members;
    members.reserve(static_cast<std::size_t>(params.n));
    for (int i = 1; i <= params.n; ++i)
        members.push_back(query::SetMember{"X" + std::to_string(i),
                                           query::subject_in({symbol_at(i)})});
    b.set("S", std::move(members));
    b.window(query::WindowSpec::sliding_count(params.ws, params.slide));
    b.consume_all();
    return b.build();
}

query::Query make_qe(const data::StockVocab& vocab, const QeParams& params) {
    const Expr a_pred = query::subject_in({vocab.schema->intern_subject(params.a_symbol)});
    const Expr b_pred = query::subject_in({vocab.schema->intern_subject(params.b_symbol)});

    // Factor = B.change / A.change with change = close - open.
    const auto change_of = [&](int slot) {
        return query::binary(BinOp::Sub, query::bound_attr(slot, vocab.close_slot),
                             query::bound_attr(slot, vocab.open_slot));
    };

    query::QueryBuilder b(vocab.schema);
    b.single("A", a_pred)
        .sticky()  // the first A correlates with every B (§2.1)
        .single("B", b_pred)
        .window(query::WindowSpec::predicate_open_time(a_pred, params.window_span))
        .emit("Factor", query::binary(BinOp::Div, change_of(1), change_of(0)));
    if (params.consume_b) b.consume({"B"});
    return b.build();
}

}  // namespace spectre::queries
