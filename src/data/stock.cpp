#include "data/stock.hpp"

#include "util/assert.hpp"

namespace spectre::data {

const std::vector<std::string>& leader_symbol_names() {
    static const std::vector<std::string> names = {
        "AAPL", "MSFT", "GOOG", "AMZN", "IBM",  "INTC", "ORCL", "CSCO",
        "HPQ",  "TXN",  "QCOM", "ADBE", "NVDA", "AMAT", "MU",   "EBAY",
    };
    return names;
}

StockVocab StockVocab::create(std::shared_ptr<event::Schema> schema) {
    SPECTRE_REQUIRE(schema != nullptr, "StockVocab needs a schema");
    StockVocab v;
    v.schema = std::move(schema);
    v.quote_type = v.schema->intern_type("QUOTE");
    v.open_slot = v.schema->intern_attr("open");
    v.close_slot = v.schema->intern_attr("close");
    v.volume_slot = v.schema->intern_attr("volume");
    for (const auto& name : leader_symbol_names())
        v.leaders.push_back(v.schema->intern_subject(name));
    return v;
}

event::Event make_quote(const StockVocab& v, event::Timestamp ts, event::SubjectId symbol,
                        double open, double close, double volume) {
    event::Event e;
    e.ts = ts;
    e.type = v.quote_type;
    e.subject = symbol;
    e.set_attr(v.open_slot, open);
    e.set_attr(v.close_slot, close);
    e.set_attr(v.volume_slot, volume);
    return e;
}

}  // namespace spectre::data
