// Synthetic NYSE-like intra-day quote stream.
//
// The paper's NYSE dataset (24M real quotes, ~3000 symbols, 1 quote/minute,
// collected from Google Finance) is not redistributable, so we substitute a
// generator with the same shape (DESIGN.md §4.2): a configurable number of
// symbols (16 of which are the Q1 leaders), round-robin interleaved at
// 1-minute resolution, prices following a bounded geometric random walk.
// `up_prob` controls the probability that a quote closes above its open —
// the knob that sets Q1/Q2 pattern-completion probabilities, which is the
// independent variable of Fig. 10.
#pragma once

#include <cstdint>

#include "data/stock.hpp"
#include "event/stream.hpp"
#include "util/rng.hpp"

namespace spectre::data {

struct NyseSynthConfig {
    std::uint64_t events = 100'000;
    int symbols = 3000;        // total symbols, leaders included
    double up_prob = 0.5;      // P(close > open) among non-flat quotes
    double flat_prob = 0.0;    // P(close == open): 1-minute bars are often flat
    double start_price = 100.0;
    double tick = 0.25;        // magnitude scale of one quote's move
    // Pull toward start_price per quote (0 = pure random walk). Q2's band
    // patterns need prices that keep oscillating through [lower, upper]
    // instead of drifting away.
    double mean_reversion = 0.0;
    double min_price = 1.0;
    double max_price = 10'000.0;
    // Shuffle the symbol order within each minute (quote arrival order on a
    // real feed is not alphabetical; without this, all 16 leaders cluster at
    // each minute boundary and one Q1 match consumes the whole cluster).
    bool shuffle_within_minute = true;
    std::uint64_t seed = 42;
};

// Generates the whole stream into a fresh vector (events are in timestamp
// order; seq is assigned on EventStore append).
std::vector<event::Event> generate_nyse(const StockVocab& vocab, const NyseSynthConfig& cfg);

// Convenience: generate and append into a store.
void generate_nyse(const StockVocab& vocab, const NyseSynthConfig& cfg,
                   event::EventStore& store);

}  // namespace spectre::data
