// RAND dataset: the paper's synthetic stream (§4.1) — "a random sequence of
// 3 million events consisting of 300 different stock symbols; the
// probability of each stock symbol is equally distributed". Prices follow
// the same bounded walk as the NYSE generator so price predicates stay
// meaningful; symbols are drawn i.i.d. uniform instead of round-robin.
#pragma once

#include <cstdint>

#include "data/stock.hpp"
#include "event/stream.hpp"
#include "util/rng.hpp"

namespace spectre::data {

struct RandStreamConfig {
    std::uint64_t events = 3'000'000;
    int symbols = 300;
    double up_prob = 0.5;
    double start_price = 100.0;
    double tick = 0.25;
    std::uint64_t seed = 7;
};

std::vector<event::Event> generate_rand(const StockVocab& vocab, const RandStreamConfig& cfg);

void generate_rand(const StockVocab& vocab, const RandStreamConfig& cfg,
                   event::EventStore& store);

}  // namespace spectre::data
