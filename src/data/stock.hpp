// Shared stock-event vocabulary for the algorithmic-trading datasets.
//
// Both datasets (§4.1) carry intra-day quotes: a symbol plus open/close
// prices (and a volume attribute for realism). StockVocab interns the
// attribute and type names into a Schema once so that queries and generators
// agree on slots, and defines the 16 "technology blue chip" leading symbols
// Q1's MLE element selects on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "event/event.hpp"

namespace spectre::data {

struct StockVocab {
    std::shared_ptr<event::Schema> schema;
    event::TypeId quote_type;      // every quote event has this type
    event::AttrSlot open_slot;     // "open"
    event::AttrSlot close_slot;    // "close"
    event::AttrSlot volume_slot;   // "volume"
    std::vector<event::SubjectId> leaders;  // the 16 blue-chip symbols

    static StockVocab create(std::shared_ptr<event::Schema> schema);
};

// The leader symbol names (used by Q1's MLE and by the generators).
const std::vector<std::string>& leader_symbol_names();

// Builds a quote event (seq is assigned by the EventStore on append).
event::Event make_quote(const StockVocab& v, event::Timestamp ts, event::SubjectId symbol,
                        double open, double close, double volume);

}  // namespace spectre::data
