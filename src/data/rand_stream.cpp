#include "data/rand_stream.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace spectre::data {

std::vector<event::Event> generate_rand(const StockVocab& vocab, const RandStreamConfig& cfg) {
    SPECTRE_REQUIRE(cfg.symbols >= 1, "need at least one symbol");

    std::vector<event::SubjectId> symbols = vocab.leaders;
    if (static_cast<int>(symbols.size()) > cfg.symbols)
        symbols.resize(static_cast<std::size_t>(cfg.symbols));
    for (int i = static_cast<int>(symbols.size()); i < cfg.symbols; ++i)
        symbols.push_back(vocab.schema->intern_subject("RSYM" + std::to_string(i)));

    std::vector<double> price(symbols.size(), cfg.start_price);
    util::Rng rng(cfg.seed);

    std::vector<event::Event> out;
    out.reserve(cfg.events);
    for (std::uint64_t i = 0; i < cfg.events; ++i) {
        const auto s = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(symbols.size()) - 1));
        const double open = price[s];
        const double magnitude = cfg.tick * (0.5 + rng.uniform());
        double close = rng.flip(cfg.up_prob) ? open + magnitude : open - magnitude;
        close = std::max(close, 1.0);
        price[s] = close;
        out.push_back(make_quote(vocab, static_cast<event::Timestamp>(i), symbols[s], open,
                                 close, 100.0));
    }
    return out;
}

void generate_rand(const StockVocab& vocab, const RandStreamConfig& cfg,
                   event::EventStore& store) {
    for (auto& e : generate_rand(vocab, cfg)) store.append(e);
}

}  // namespace spectre::data
