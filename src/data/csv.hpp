// CSV persistence for quote streams.
//
// Format: ts,symbol,open,close,volume — one event per line, header included.
// Lets users run the engines and benches over their own recorded quote data
// (e.g. a real NYSE extract) instead of the synthetic generators.
#pragma once

#include <iosfwd>
#include <string>

#include "data/stock.hpp"
#include "event/stream.hpp"

namespace spectre::data {

void write_csv(std::ostream& os, const StockVocab& vocab,
               const std::vector<event::Event>& events);
void write_csv_file(const std::string& path, const StockVocab& vocab,
                    const std::vector<event::Event>& events);

// Parses events; symbols are interned into the vocab's schema. Throws
// std::runtime_error on malformed rows.
std::vector<event::Event> read_csv(std::istream& is, const StockVocab& vocab);
std::vector<event::Event> read_csv_file(const std::string& path, const StockVocab& vocab);

}  // namespace spectre::data
