#include "data/nyse_synth.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace spectre::data {

std::vector<event::Event> generate_nyse(const StockVocab& vocab, const NyseSynthConfig& cfg) {
    SPECTRE_REQUIRE(cfg.symbols >= 1, "need at least one symbol");
    SPECTRE_REQUIRE(cfg.up_prob >= 0.0 && cfg.up_prob <= 1.0, "up_prob out of [0,1]");

    // Symbol universe: the 16 leaders plus synthetic tickers.
    std::vector<event::SubjectId> symbols = vocab.leaders;
    if (static_cast<int>(symbols.size()) > cfg.symbols)
        symbols.resize(static_cast<std::size_t>(cfg.symbols));
    for (int i = static_cast<int>(symbols.size()); i < cfg.symbols; ++i)
        symbols.push_back(vocab.schema->intern_subject("SYM" + std::to_string(i)));

    std::vector<double> price(symbols.size(), cfg.start_price);
    util::Rng rng(cfg.seed);

    // Arrival order within each minute: identity or a fresh shuffle per
    // minute (deterministic given the seed).
    std::vector<std::size_t> order(symbols.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    std::vector<event::Event> out;
    out.reserve(cfg.events);
    // One quote per symbol per minute — the NYSE dataset's 1-minute
    // resolution across ~3000 symbols.
    for (std::uint64_t i = 0; i < cfg.events; ++i) {
        const std::size_t pos_in_minute = static_cast<std::size_t>(i % symbols.size());
        if (pos_in_minute == 0 && cfg.shuffle_within_minute)
            std::shuffle(order.begin(), order.end(), rng.engine());
        const std::size_t s = order[pos_in_minute];
        const auto minute = static_cast<event::Timestamp>(i / symbols.size());
        const double open = price[s];
        double close = open;
        if (!rng.flip(cfg.flat_prob)) {
            const bool up = rng.flip(cfg.up_prob);
            const double magnitude = cfg.tick * (0.5 + rng.uniform());
            close = up ? open + magnitude : open - magnitude;
            close += cfg.mean_reversion * (cfg.start_price - open);
        }
        close = std::clamp(close, cfg.min_price, cfg.max_price);
        price[s] = close;
        const double volume = 100.0 + rng.uniform(0.0, 900.0);
        out.push_back(make_quote(vocab, minute, symbols[s], open, close, volume));
    }
    return out;
}

void generate_nyse(const StockVocab& vocab, const NyseSynthConfig& cfg,
                   event::EventStore& store) {
    for (auto& e : generate_nyse(vocab, cfg)) store.append(e);
}

}  // namespace spectre::data
