#include "data/csv.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace spectre::data {

void write_csv(std::ostream& os, const StockVocab& vocab,
               const std::vector<event::Event>& events) {
    // Full round-trip precision for the price attributes.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "ts,symbol,open,close,volume\n";
    for (const auto& e : events) {
        os << e.ts << ',' << vocab.schema->subject_name(e.subject) << ','
           << e.attr(vocab.open_slot) << ',' << e.attr(vocab.close_slot) << ','
           << e.attr(vocab.volume_slot) << '\n';
    }
}

void write_csv_file(const std::string& path, const StockVocab& vocab,
                    const std::vector<event::Event>& events) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    write_csv(os, vocab, events);
}

std::vector<event::Event> read_csv(std::istream& is, const StockVocab& vocab) {
    std::vector<event::Event> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty()) continue;
        if (lineno == 1 && line.rfind("ts,", 0) == 0) continue;  // header
        std::istringstream row(line);
        std::string ts_s, sym, open_s, close_s, vol_s;
        if (!std::getline(row, ts_s, ',') || !std::getline(row, sym, ',') ||
            !std::getline(row, open_s, ',') || !std::getline(row, close_s, ',') ||
            !std::getline(row, vol_s, ','))
            throw std::runtime_error("malformed CSV row at line " + std::to_string(lineno));
        try {
            out.push_back(make_quote(vocab, static_cast<event::Timestamp>(std::stoll(ts_s)),
                                     vocab.schema->intern_subject(sym), std::stod(open_s),
                                     std::stod(close_s), std::stod(vol_s)));
        } catch (const std::exception&) {
            throw std::runtime_error("malformed CSV value at line " + std::to_string(lineno));
        }
    }
    return out;
}

std::vector<event::Event> read_csv_file(const std::string& path, const StockVocab& vocab) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    return read_csv(is, vocab);
}

}  // namespace spectre::data
