// obs: the unified metrics plane (DESIGN.md §12).
//
// Every stat the system previously kept in four disconnected structs
// (ServerCounters, ServerStats, SchedStats, SplitterMetrics) — plus the
// latency histograms this PR introduces — lives in one obs::Registry. The
// design goal is a hot path that costs a handful of nanoseconds per update
// and a scraper that can read a *live* server without stopping any worker:
//
//   * A Registry holds the series definitions (name, kind, help) — a fixed
//     built-in schema (sid::) plus dynamically added series (bounded: the
//     only dynamic names are the per-shard-index lane series, capped by the
//     shard limit).
//   * Writers never touch the registry. Each writer scope — one server
//     session, one pool worker, the reactor — owns a Shard: a flat block of
//     relaxed std::atomic<uint64_t> cells, one (or 66, for a histogram) per
//     series. Relaxed single-word updates compile to plain loads/stores/adds
//     on x86; cells are partitioned per scope so cross-thread contention on
//     a cache line is the rare case, not the design.
//   * The scraper aggregates at read time: sum for counters/gauges, max for
//     peak gauges, per-bucket sum for histograms, over every live shard plus
//     a retained block that retired shards folded into. Reads are relaxed
//     loads — no fence stalls a worker. The snapshot is torn-read tolerant
//     by contract: each individual cell is read atomically (never torn), but
//     cells are not read at one instant, so e.g. a histogram's count can be
//     one ahead of its sum. Counters remain monotone between scrapes because
//     retiring a shard folds counter cells into the retained block under the
//     same mutex the scraper holds (§12).
//
// Histograms are log2-bucketed: bucket 0 counts zero values, bucket i (1..63)
// counts values in [2^(i-1), 2^i). Latency series record nanoseconds.
//
// SPECTRE_OBS_OFF=1 disables the *added* instrumentation (timestamps and
// histogram observes on hot paths — the perf kill switch run_perf.sh's
// overhead row flips); counter migration is always on, it replaced atomics
// that existed before this subsystem.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spectre::obs {

enum class Kind : std::uint8_t {
    Counter,    // monotone; aggregated by sum; folded on retire
    Gauge,      // current value; aggregated by sum over *live* shards only
    PeakGauge,  // high-water mark; aggregated by max; folded with max
    Histogram,  // log2 buckets + count + sum; aggregated per cell; folded
};

// Stable series handle: an index into the registry's definition table. The
// built-in schema (sid:: below) makes these compile-time constants.
struct Series {
    std::uint32_t index = 0;
};

inline constexpr std::size_t kHistBuckets = 64;
// Cells a histogram occupies: buckets, then count, then sum.
inline constexpr std::size_t kHistCells = kHistBuckets + 2;
// Fixed capacity of the definition table: lets writers index the offset
// table without synchronizing against later registrations (entries are
// written once, before the Series id is published to any writer).
inline constexpr std::size_t kMaxSeries = 320;

// log2 bucket of a value: 0 for 0, else floor(log2(v)) + 1 (clamped).
inline std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    const std::size_t b = 64 - static_cast<std::size_t>(__builtin_clzll(v));
    return b < kHistBuckets ? b : kHistBuckets - 1;
}

// Built-in schema ids (== Series::index). Order is the registration order in
// Registry's constructor; append only — benches and tests hold these.
namespace sid {
enum : std::uint32_t {
    // --- server / session lifecycle (was ServerCounters) -------------------
    kSessionsAccepted,
    kSessionsCompleted,
    kSessionsFailed,
    kSessionsLive,   // gauge
    kEventsIngested,
    kResultsEmitted,
    kParksInput,
    kParksEgress,
    kIngestPauses,
    kEgressBufferedBytes,  // gauge
    kEgressPeakBytes,      // peak
    // --- engine pool (was PoolStats counters) ------------------------------
    kPoolQuanta,
    kPoolTasksAdded,
    kPoolTasksFinished,
    // --- ready-instance scheduler (was SchedStats) -------------------------
    kSchedSessions,
    kSchedSteps,
    kSchedCycles,
    kSchedCyclesSkipped,
    kSchedBatches,
    kSchedBatchEvents,
    kSchedReadyDepthMax,  // peak
    kSchedReadyP50Milli,  // Σ per-session p50 × 1000 (mean = /kSchedSessions)
    kSchedInstancesRetired,
    kSchedInstancesCancelled,
    kSchedWastedEvents,
    // --- splitter (was SplitterMetrics) ------------------------------------
    kSplitterCycles,
    kWindowsOpened,
    kWindowsRetired,
    kGroupsCreated,
    kGroupsCompleted,
    kGroupsAbandoned,
    kRollbacks,
    kLateValidations,
    kMaxTreeVersions,  // peak
    kVersionsDropped,
    kCopiesCloned,
    kCopiesFresh,
    kUpdatesApplied,
    kStatsSamples,
    kComplexEvents,
    // --- detector (window-granularity hook, bench_detect_hot) --------------
    kDetectorEvents,
    kDetectorWindows,
    kDetectorMatches,
    // --- latency / depth histograms (this PR's lifecycle instrumentation) --
    kResultLatencyNs,       // DATA arrival → RESULT buffered for egress
    kFirstResultLatencyNs,  // first DATA arrival → first RESULT, per session
    kPoolQueueWaitNs,       // task runnable → quantum start
    kQuantumNs,             // run_quantum duration
    kSplitterCycleNs,       // one maintenance+scheduling cycle
    kEgressStallNs,         // parked-on-egress-credit → next quantum
    kLaneDepth,             // destination shard's queued events, per ingest
    kLaneSkew,              // max-min queued over a session's lanes, sampled
    kDetectorWindowEvents,  // events fed per completed window
    // --- elastic partitioning (DESIGN.md §13) -------------------------------
    kLaneMigrations,  // key lanes handed between shards (steals + reshards)
    kReshards,        // accepted reshard() routing-epoch changes
    // --- zero-copy ingest / vectored egress (DESIGN.md §14) -----------------
    // The byte-accounting pair: wire bytes are every DATA-path byte read off
    // a session socket; copied bytes are the subset that took a staging copy
    // through FrameReader (control frames + partial frames at view tails).
    // copied ≪ wire is the "one copy off the socket" invariant, asserted by
    // the server tests.
    kIngestWireBytes,
    kIngestCopiedBytes,
    kIngestReads,          // backend read() calls that returned data
    kIngestFramesScatter,  // DATA frames decoded in place from a read view
    kIngestFramesStaged,   // frames decoded via the FrameReader staging path
    kEgressWritevs,        // vectored egress flush syscalls
    kEgressBytesSent,      // bytes written to session sockets
    // --- shared multi-query ingest plane (DESIGN.md §15) --------------------
    kHubStreams,            // published streams currently registered
    kHubSubscribers,        // subscriber sessions currently attached
    kHubSubscribersTotal,   // subscriber attaches, lifetime
    kHubChunksReclaimed,    // shared-store chunks freed behind all frontiers
    kCompileCacheHits,      // subscriber queries served a shared artifact
    kCompileCacheMisses,    // subscriber queries compiled fresh
    kCount
};
}  // namespace sid

struct SeriesDef {
    std::string name;  // exposition name; may carry a {label="x"} suffix
    Kind kind = Kind::Counter;
    std::string help;
};

// Aggregated value of one series at scrape time.
struct SnapshotEntry {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t value = 0;  // counter / gauge / peak
    std::array<std::uint64_t, kHistBuckets> buckets{};
    std::uint64_t count = 0;  // histogram observations
    std::uint64_t sum = 0;    // histogram Σ values
};

struct Snapshot {
    std::vector<SnapshotEntry> entries;  // indexed by Series::index

    const SnapshotEntry* find(const std::string& name) const;
    std::uint64_t value(Series s) const {
        return s.index < entries.size() ? entries[s.index].value : 0;
    }
    // Approximate histogram quantile from the log2 buckets (upper bound of
    // the bucket holding the q-th observation); 0 when empty.
    std::uint64_t quantile(Series s, double q) const;
};

class Registry;

// One writer scope's block of cells. Updates are relaxed atomic RMWs on
// private cells — never a fence, never a lock; safe to call from any thread
// the owner serializes (a session's cells see the reactor on ingest-side
// series and the session's current pool worker on engine-side series, which
// never write the same cell concurrently in the common case; when they can,
// relaxed fetch_add keeps the count exact anyway).
class Shard {
public:
    void add(Series s, std::uint64_t d) noexcept {
        if (auto* c = cell(s, 0)) c->fetch_add(d, std::memory_order_relaxed);
    }
    // Gauge decrement (cells are uint64; two's-complement wrap makes the
    // aggregated sum come out right as long as each shard's own gauge never
    // logically goes negative).
    void sub(Series s, std::uint64_t d) noexcept {
        if (auto* c = cell(s, 0)) c->fetch_sub(d, std::memory_order_relaxed);
    }
    void set(Series s, std::uint64_t v) noexcept {
        if (auto* c = cell(s, 0)) c->store(v, std::memory_order_relaxed);
    }
    void set_peak(Series s, std::uint64_t v) noexcept {
        auto* c = cell(s, 0);
        if (!c) return;
        std::uint64_t cur = c->load(std::memory_order_relaxed);
        while (v > cur &&
               !c->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    void observe(Series s, std::uint64_t v) noexcept {
        auto* b = cell(s, bucket_of(v));
        if (!b) return;
        b->fetch_add(1, std::memory_order_relaxed);
        cell(s, kHistBuckets)->fetch_add(1, std::memory_order_relaxed);
        cell(s, kHistBuckets + 1)->fetch_add(v, std::memory_order_relaxed);
    }
    std::uint64_t value(Series s) const noexcept {
        const auto* c = cell(s, 0);
        return c ? c->load(std::memory_order_relaxed) : 0;
    }
    std::uint64_t hist_count(Series s) const noexcept {
        const auto* c = cell(s, kHistBuckets);
        return c ? c->load(std::memory_order_relaxed) : 0;
    }

private:
    friend class Registry;
    Shard(const Registry* owner, std::size_t cells);

    std::atomic<std::uint64_t>* cell(Series s, std::size_t sub) noexcept;
    const std::atomic<std::uint64_t>* cell(Series s, std::size_t sub) const noexcept {
        return const_cast<Shard*>(this)->cell(s, sub);
    }

    const Registry* owner_;
    std::vector<std::atomic<std::uint64_t>> cells_;  // fixed size at creation
};

using ShardPtr = std::shared_ptr<Shard>;

class Registry {
public:
    Registry();  // registers the built-in schema (sid::)

    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    // Registers (or finds, by exact name) a series. The id is stable for the
    // registry's lifetime; shards created afterwards carry its cells, shards
    // created before read as zero for it. Throws std::length_error past
    // kMaxSeries (the schema is static; dynamic names are the bounded
    // per-shard-index lane series).
    Series add(std::string name, Kind kind, std::string help = {});

    // New writer scope. The shard stays aggregated into scrapes until
    // retire()d; destroying the last ShardPtr without retiring simply drops
    // the scope's gauges and *loses* its counters — retire() is the
    // monotone-preserving path (counters/histograms/peaks fold into the
    // retained block, gauges drop: a dead scope's "current" value is gone).
    ShardPtr make_shard();
    void retire(const ShardPtr& shard);

    // Aggregate every live shard + the retained block. Torn-read tolerant
    // (header comment); safe concurrently with writers and retire().
    Snapshot snapshot() const;
    // One shard's own cells (per-session STATS view), same tolerance.
    Snapshot snapshot_of(const Shard& shard) const;

    // Prometheus text exposition (version 0.0.4), `spectre_` prefix.
    std::string prometheus() const { return prometheus(snapshot()); }
    static std::string prometheus(const Snapshot& snap);
    // Flat JSON object: scalars as numbers, histograms as
    // {"count":..,"sum":..,"p50":..,"p99":..}.
    static std::string json(const Snapshot& snap);

    std::size_t series_count() const;

private:
    friend class Shard;

    void accumulate(const Shard& shard, Snapshot& into, bool live) const;

    mutable std::mutex mutex_;
    std::vector<SeriesDef> defs_;            // size == series count
    // Writer-visible layout: offsets_[i] = first cell of series i. Entries
    // are written once (under mutex_) before the Series id escapes; readers
    // index without locks. Fixed capacity so growth never reallocates.
    std::array<std::uint32_t, kMaxSeries> offsets_{};
    std::array<std::uint8_t, kMaxSeries> hist_{};  // 1 = histogram series
    std::size_t total_cells_ = 0;
    std::vector<ShardPtr> shards_;           // live scopes
    std::unique_ptr<Shard> retained_;        // folded retired scopes
};

// Global kill switch: SPECTRE_OBS_OFF=1 (read once). Gates the added
// hot-path instrumentation (clock reads, histogram observes, detector /
// runtime bindings) — not the counters that replaced pre-existing atomics.
bool enabled() noexcept;

// Monotonic nanoseconds (CLOCK_MONOTONIC); 0 when obs is disabled so call
// sites can skip their observes with one branch.
std::uint64_t now_ns() noexcept;

}  // namespace spectre::obs
