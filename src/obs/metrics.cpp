#include "obs/metrics.hpp"

#include <cstdlib>
#include <ctime>
#include <stdexcept>

namespace spectre::obs {

bool enabled() noexcept {
    static const bool on = [] {
        const char* v = std::getenv("SPECTRE_OBS_OFF");
        return !(v && v[0] == '1' && v[1] == '\0');
    }();
    return on;
}

std::uint64_t now_ns() noexcept {
    if (!enabled()) return 0;
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

// --- Shard ------------------------------------------------------------------

Shard::Shard(const Registry* owner, std::size_t cells)
    : owner_(owner), cells_(cells) {}

std::atomic<std::uint64_t>* Shard::cell(Series s, std::size_t sub) noexcept {
    if (s.index >= kMaxSeries) return nullptr;
    // Histogram sub-cells only exist for histogram series; a stray observe()
    // on a scalar must not stomp the next series' cells.
    if (sub != 0 && !owner_->hist_[s.index]) return nullptr;
    const std::size_t at = owner_->offsets_[s.index] + sub;
    return at < cells_.size() ? &cells_[at] : nullptr;
}

// --- Registry ---------------------------------------------------------------

namespace {
struct BuiltinDef {
    const char* name;
    Kind kind;
    const char* help;
};
// Parallel to sid:: — same order, appended only.
constexpr BuiltinDef kBuiltins[] = {
    {"sessions_accepted", Kind::Counter, "connections accepted"},
    {"sessions_completed", Kind::Counter, "sessions whose engine finished (BYE buffered)"},
    {"sessions_failed", Kind::Counter, "sessions failed (corrupt frame / bad query / died)"},
    {"sessions_live", Kind::Gauge, "currently connected or draining sessions"},
    {"events_ingested", Kind::Counter, "DATA events decoded into ingest queues"},
    {"results_emitted", Kind::Counter, "RESULT frames buffered for delivery"},
    {"parks_input", Kind::Counter, "engine tasks parked awaiting ingest"},
    {"parks_egress", Kind::Counter, "engine tasks parked awaiting egress credit"},
    {"ingest_pauses", Kind::Counter, "reactor paused a socket's reads (TCP backpressure)"},
    {"egress_buffered_bytes", Kind::Gauge, "bytes buffered for slow result readers"},
    {"egress_peak_bytes", Kind::PeakGauge, "peak per-session egress buffer bytes"},
    {"pool_quanta", Kind::Counter, "engine quanta executed"},
    {"pool_tasks_added", Kind::Counter, "engine tasks registered"},
    {"pool_tasks_finished", Kind::Counter, "engine tasks that returned Done"},
    {"sched_sessions", Kind::Counter, "speculative sessions that reported sched stats"},
    {"sched_steps", Kind::Counter, "scheduler step() calls"},
    {"sched_cycles", Kind::Counter, "splitter cycles the dirty gate ran"},
    {"sched_cycles_skipped", Kind::Counter, "steps that skipped the cycle"},
    {"sched_batches", Kind::Counter, "instance batches scheduled"},
    {"sched_batch_events", Kind::Counter, "window positions advanced by batches"},
    {"sched_ready_depth_max", Kind::PeakGauge, "peak ready-queue depth at pop"},
    {"sched_ready_p50_milli", Kind::Counter, "sum of per-session ready-depth p50 x1000"},
    {"sched_instances_retired", Kind::Counter, "batches that finished their version"},
    {"sched_instances_cancelled", Kind::Counter, "batches that found dead speculation"},
    {"sched_wasted_events", Kind::Counter, "work on later-dropped versions"},
    {"splitter_cycles", Kind::Counter, "splitter maintenance+scheduling cycles"},
    {"windows_opened", Kind::Counter, "windows opened"},
    {"windows_retired", Kind::Counter, "windows retired"},
    {"groups_created", Kind::Counter, "consumption groups created"},
    {"groups_completed", Kind::Counter, "consumption groups completed"},
    {"groups_abandoned", Kind::Counter, "consumption groups abandoned"},
    {"rollbacks", Kind::Counter, "instance-detected inconsistencies"},
    {"late_validations", Kind::Counter, "inconsistencies caught at root retirement"},
    {"max_tree_versions", Kind::PeakGauge, "peak live dependency-tree versions"},
    {"versions_dropped", Kind::Counter, "window versions dropped"},
    {"copies_cloned", Kind::Counter, "subtree copies that kept progress"},
    {"copies_fresh", Kind::Counter, "subtree copies restarted"},
    {"updates_applied", Kind::Counter, "instance updates drained and applied"},
    {"stats_samples", Kind::Counter, "delta-transition samples folded into the model"},
    {"complex_events", Kind::Counter, "complex events emitted by splitters"},
    {"detector_events", Kind::Counter, "events fed to instrumented detectors"},
    {"detector_windows", Kind::Counter, "windows completed by instrumented detectors"},
    {"detector_matches", Kind::Counter, "pattern matches completed"},
    {"result_latency_ns", Kind::Histogram, "DATA arrival to RESULT buffered"},
    {"first_result_latency_ns", Kind::Histogram, "first DATA arrival to first RESULT, per session"},
    {"pool_queue_wait_ns", Kind::Histogram, "task runnable to quantum start"},
    {"quantum_ns", Kind::Histogram, "run_quantum duration"},
    {"splitter_cycle_ns", Kind::Histogram, "one splitter cycle"},
    {"egress_stall_ns", Kind::Histogram, "parked on egress credit to next quantum"},
    {"lane_depth", Kind::Histogram, "destination shard queue depth per ingest"},
    {"lane_skew", Kind::Histogram, "max-min lane queue depth, sampled"},
    {"detector_window_events", Kind::Histogram, "events fed per completed window"},
    {"lane_migrations", Kind::Counter, "key lanes migrated between shards"},
    {"reshards", Kind::Counter, "accepted re-shard routing epochs"},
    {"ingest_wire_bytes", Kind::Counter, "DATA-path bytes read off session sockets"},
    {"ingest_copied_bytes", Kind::Counter, "ingest bytes staged through FrameReader"},
    {"ingest_reads", Kind::Counter, "backend read() calls returning data"},
    {"ingest_frames_scatter", Kind::Counter, "DATA frames decoded in place"},
    {"ingest_frames_staged", Kind::Counter, "frames decoded via the staging path"},
    {"egress_writevs", Kind::Counter, "vectored egress flush syscalls"},
    {"egress_bytes_sent", Kind::Counter, "bytes written to session sockets"},
    {"hub_streams", Kind::Gauge, "published streams currently registered"},
    {"hub_subscribers", Kind::Gauge, "subscriber sessions currently attached"},
    {"hub_subscribers_total", Kind::Counter, "subscriber attaches, lifetime"},
    {"hub_chunks_reclaimed", Kind::Counter, "shared-store chunks freed behind all frontiers"},
    {"compile_cache_hits", Kind::Counter, "subscriber queries served a shared artifact"},
    {"compile_cache_misses", Kind::Counter, "subscriber queries compiled fresh"},
};
static_assert(sizeof(kBuiltins) / sizeof(kBuiltins[0]) == sid::kCount,
              "sid:: and kBuiltins must stay parallel");
}  // namespace

Registry::Registry() {
    for (const auto& b : kBuiltins) add(b.name, b.kind, b.help);
}

Series Registry::add(std::string name, Kind kind, std::string help) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < defs_.size(); ++i)
        if (defs_[i].name == name) return Series{static_cast<std::uint32_t>(i)};
    if (defs_.size() >= kMaxSeries)
        throw std::length_error("obs::Registry: series table full");
    const auto index = static_cast<std::uint32_t>(defs_.size());
    offsets_[index] = static_cast<std::uint32_t>(total_cells_);
    hist_[index] = kind == Kind::Histogram ? 1 : 0;
    total_cells_ += kind == Kind::Histogram ? kHistCells : 1;
    defs_.push_back(SeriesDef{std::move(name), kind, std::move(help)});
    return Series{index};
}

ShardPtr Registry::make_shard() {
    std::lock_guard<std::mutex> lock(mutex_);
    ShardPtr shard(new Shard(this, total_cells_));
    shards_.push_back(shard);
    return shard;
}

void Registry::retire(const ShardPtr& shard) {
    if (!shard) return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i] != shard) continue;
        if (!retained_)
            retained_ = std::unique_ptr<Shard>(new Shard(this, total_cells_));
        // Fold monotone state: counters and histogram cells sum, peaks max,
        // gauges drop (a retired scope has no "current" value).
        for (std::size_t d = 0; d < defs_.size(); ++d) {
            const Series s{static_cast<std::uint32_t>(d)};
            switch (defs_[d].kind) {
                case Kind::Counter:
                    retained_->add(s, shard->value(s));
                    break;
                case Kind::Gauge:
                    break;
                case Kind::PeakGauge:
                    retained_->set_peak(s, shard->value(s));
                    break;
                case Kind::Histogram:
                    for (std::size_t b = 0; b < kHistCells; ++b) {
                        const auto* c = shard->cell(s, b);
                        auto* r = retained_->cell(s, b);
                        if (c && r)
                            r->fetch_add(c->load(std::memory_order_relaxed),
                                         std::memory_order_relaxed);
                    }
                    break;
            }
        }
        shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
    }
}

void Registry::accumulate(const Shard& shard, Snapshot& into, bool live) const {
    for (std::size_t d = 0; d < defs_.size(); ++d) {
        const Series s{static_cast<std::uint32_t>(d)};
        SnapshotEntry& e = into.entries[d];
        switch (defs_[d].kind) {
            case Kind::Counter:
                e.value += shard.value(s);
                break;
            case Kind::Gauge:
                if (live) e.value += shard.value(s);
                break;
            case Kind::PeakGauge: {
                const std::uint64_t v = shard.value(s);
                if (v > e.value) e.value = v;
                break;
            }
            case Kind::Histogram: {
                for (std::size_t b = 0; b < kHistBuckets; ++b) {
                    const auto* c = shard.cell(s, b);
                    if (c) e.buckets[b] += c->load(std::memory_order_relaxed);
                }
                e.count += shard.hist_count(s);
                const auto* sum = shard.cell(s, kHistBuckets + 1);
                if (sum) e.sum += sum->load(std::memory_order_relaxed);
                break;
            }
        }
    }
}

Snapshot Registry::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.entries.resize(defs_.size());
    for (std::size_t d = 0; d < defs_.size(); ++d) {
        snap.entries[d].name = defs_[d].name;
        snap.entries[d].kind = defs_[d].kind;
    }
    if (retained_) accumulate(*retained_, snap, /*live=*/false);
    for (const auto& shard : shards_) accumulate(*shard, snap, /*live=*/true);
    return snap;
}

Snapshot Registry::snapshot_of(const Shard& shard) const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.entries.resize(defs_.size());
    for (std::size_t d = 0; d < defs_.size(); ++d) {
        snap.entries[d].name = defs_[d].name;
        snap.entries[d].kind = defs_[d].kind;
    }
    accumulate(shard, snap, /*live=*/true);
    return snap;
}

std::size_t Registry::series_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return defs_.size();
}

// --- Snapshot helpers -------------------------------------------------------

const SnapshotEntry* Snapshot::find(const std::string& name) const {
    for (const auto& e : entries)
        if (e.name == name) return &e;
    return nullptr;
}

std::uint64_t Snapshot::quantile(Series s, double q) const {
    if (s.index >= entries.size()) return 0;
    const SnapshotEntry& e = entries[s.index];
    if (e.count == 0) return 0;
    const double target = q * static_cast<double>(e.count);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
        seen += e.buckets[b];
        if (static_cast<double>(seen) >= target)
            return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;  // bucket upper bound
    }
    return ~std::uint64_t{0};
}

// --- exposition -------------------------------------------------------------

namespace {
// "lane_depth{shard=\"3\"}" → base "lane_depth", labels "shard=\"3\"".
void split_name(const std::string& name, std::string& base, std::string& labels) {
    const auto brace = name.find('{');
    if (brace == std::string::npos) {
        base = name;
        labels.clear();
    } else {
        base = name.substr(0, brace);
        labels = name.substr(brace + 1, name.size() - brace - 2);
    }
}

const char* type_of(Kind kind) {
    switch (kind) {
        case Kind::Counter: return "counter";
        case Kind::Gauge:
        case Kind::PeakGauge: return "gauge";
        case Kind::Histogram: return "histogram";
    }
    return "untyped";
}

void append_labeled(std::string& out, const std::string& base,
                    const std::string& labels, const std::string& extra,
                    std::uint64_t v) {
    out += "spectre_";
    out += base;
    if (!labels.empty() || !extra.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra.empty()) out += ',';
        out += extra;
        out += '}';
    }
    out += ' ';
    out += std::to_string(v);
    out += '\n';
}
}  // namespace

std::string Registry::prometheus(const Snapshot& snap) {
    std::string out;
    out.reserve(snap.entries.size() * 64);
    std::string base, labels;
    for (const auto& e : snap.entries) {
        split_name(e.name, base, labels);
        out += "# TYPE spectre_" + base + " " + type_of(e.kind) + "\n";
        if (e.kind != Kind::Histogram) {
            append_labeled(out, base, labels, "", e.value);
            continue;
        }
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
            if (e.buckets[b] == 0) continue;  // sparse: emit touched buckets only
            cum += e.buckets[b];
            const std::uint64_t le = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
            append_labeled(out, base + "_bucket", labels,
                           "le=\"" + std::to_string(le) + "\"", cum);
        }
        append_labeled(out, base + "_bucket", labels, "le=\"+Inf\"", e.count);
        append_labeled(out, base + "_sum", labels, "", e.sum);
        append_labeled(out, base + "_count", labels, "", e.count);
    }
    return out;
}

std::string Registry::json(const Snapshot& snap) {
    std::string out = "{";
    bool first = true;
    for (const auto& e : snap.entries) {
        if (!first) out += ',';
        first = false;
        out += '"';
        for (char c : e.name)  // names contain at most {}="; escape quotes
            if (c == '"') out += "\\\"";
            else out += c;
        out += "\":";
        if (e.kind != Kind::Histogram) {
            out += std::to_string(e.value);
            continue;
        }
        Snapshot one;  // quantile() over just this entry
        one.entries.push_back(e);
        out += "{\"count\":" + std::to_string(e.count) +
               ",\"sum\":" + std::to_string(e.sum) +
               ",\"p50\":" + std::to_string(one.quantile(Series{0}, 0.50)) +
               ",\"p99\":" + std::to_string(one.quantile(Series{0}, 0.99)) + "}";
    }
    out += '}';
    return out;
}

}  // namespace spectre::obs
