// Multi-producer single-consumer queue.
//
// Operator instances (producers) post consumption-group feedback; the
// splitter (single consumer) drains the batch at each maintenance cycle
// (Fig. 8: "function calls ... are buffered ... executed in a batch at each
// new scheduling cycle of the splitter"). A mutex-guarded vector with
// swap-drain is simple, correct and — because drains amortize the lock over
// the whole batch — fast enough that it never shows up in profiles.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

namespace spectre::util {

template <typename T>
class MpscQueue {
public:
    void push(T item) {
        const std::lock_guard<std::mutex> lock(mutex_);
        items_.push_back(std::move(item));
    }

    // Moves out everything queued so far; returns items in push order.
    std::vector<T> drain() {
        std::vector<T> out;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            out.swap(items_);
        }
        return out;
    }

    bool empty() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.empty();
    }

    std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

private:
    mutable std::mutex mutex_;
    std::vector<T> items_;
};

}  // namespace spectre::util
