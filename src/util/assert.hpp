// Lightweight always-on assertion macros.
//
// SPECTRE_REQUIRE is used for precondition violations on public APIs
// (throws std::invalid_argument); SPECTRE_CHECK for internal invariants
// (throws std::logic_error). Both stay enabled in release builds: this is
// infrastructure code where silent corruption is far more expensive than a
// branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spectre::util {

[[noreturn]] inline void raise_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
    std::ostringstream os;
    os << "requirement failed: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw std::invalid_argument(os.str());
}

[[noreturn]] inline void raise_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
    std::ostringstream os;
    os << "invariant violated: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw std::logic_error(os.str());
}

}  // namespace spectre::util

#define SPECTRE_REQUIRE(cond, msg)                                             \
    do {                                                                        \
        if (!(cond)) ::spectre::util::raise_require(#cond, __FILE__, __LINE__, (msg)); \
    } while (0)

#define SPECTRE_CHECK(cond, msg)                                                \
    do {                                                                        \
        if (!(cond)) ::spectre::util::raise_check(#cond, __FILE__, __LINE__, (msg)); \
    } while (0)
