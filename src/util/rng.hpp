// Seeded, splittable pseudo-random generator used by all dataset generators
// and the simulated runtime. Every randomized component takes an explicit
// seed so that experiments are reproducible run-to-run (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <random>

namespace spectre::util {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    // Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    // Uniform double in [lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    // Bernoulli trial with success probability p.
    bool flip(double p) { return uniform() < p; }

    double gaussian(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    // Derives an independent child generator; used to give each stream /
    // symbol its own deterministic randomness regardless of draw order.
    Rng split() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace spectre::util
