// Descriptive statistics helpers for the benchmark harness.
//
// The paper reports each experiment as "candlesticks": the 0th, 25th, 50th,
// 75th and 100th percentiles over 10 repetitions (§4.2). Candlestick mirrors
// that exactly; RunningStats is a Welford accumulator used by run-time
// monitors (e.g. the splitter's average-window-size estimate, Fig. 5 line 2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spectre::util {

// Five-number summary over a sample, matching the paper's plots.
struct Candlestick {
    double min = 0, p25 = 0, median = 0, p75 = 0, max = 0;

    std::string to_string() const;
};

// Linear-interpolated percentile (q in [0,100]) of an unsorted sample.
double percentile(std::vector<double> sample, double q);

Candlestick candlestick(const std::vector<double>& sample);

// Numerically stable streaming mean/variance (Welford). Thread-compatible,
// not thread-safe: each monitor owns one instance.
class RunningStats {
public:
    void add(double x) noexcept;
    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    double variance() const noexcept;  // population variance
    double stddev() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

// Exponentially-smoothed scalar: v <- (1-alpha)*v + alpha*x, as used for the
// transition-matrix update T1 = (1-α)·T1_old + α·T1_new (§3.2.1).
class EwmaScalar {
public:
    explicit EwmaScalar(double alpha);
    void add(double x) noexcept;
    bool empty() const noexcept { return !seeded_; }
    double value() const noexcept { return value_; }

private:
    double alpha_;
    double value_ = 0.0;
    bool seeded_ = false;
};

}  // namespace spectre::util
