#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace spectre::util {

double percentile(std::vector<double> sample, double q) {
    SPECTRE_REQUIRE(!sample.empty(), "percentile of empty sample");
    SPECTRE_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
    std::sort(sample.begin(), sample.end());
    if (sample.size() == 1) return sample.front();
    const double rank = q / 100.0 * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sample[lo] + frac * (sample[hi] - sample[lo]);
}

Candlestick candlestick(const std::vector<double>& sample) {
    Candlestick c;
    c.min = percentile(sample, 0);
    c.p25 = percentile(sample, 25);
    c.median = percentile(sample, 50);
    c.p75 = percentile(sample, 75);
    c.max = percentile(sample, 100);
    return c;
}

std::string Candlestick::to_string() const {
    std::ostringstream os;
    os << '[' << min << " | " << p25 << ' ' << median << ' ' << p75 << " | " << max << ']';
    return os.str();
}

void RunningStats::add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

EwmaScalar::EwmaScalar(double alpha) : alpha_(alpha) {
    SPECTRE_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha out of [0,1]");
}

void EwmaScalar::add(double x) noexcept {
    if (!seeded_) {
        value_ = x;
        seeded_ = true;
    } else {
        value_ = (1.0 - alpha_) * value_ + alpha_ * x;
    }
}

}  // namespace spectre::util
