// String interning: maps strings to small dense integer ids.
//
// Event types, stock symbols and attribute names are interned once at query /
// stream construction time so that the hot matching path only compares
// integers. An InternTable is not thread-safe for writes; SPECTRE interns
// everything before the parallel phase starts, which is why reads (id -> name)
// are lock-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace spectre::util {

using InternId = std::uint32_t;

inline constexpr InternId kInvalidIntern = UINT32_MAX;

class InternTable {
public:
    // Returns the id for `name`, inserting it if unseen.
    InternId intern(std::string_view name);

    // Returns the id for `name` or kInvalidIntern if it was never interned.
    InternId lookup(std::string_view name) const;

    // Precondition: id was returned by intern() on this table.
    const std::string& name(InternId id) const;

    std::size_t size() const noexcept { return names_.size(); }

private:
    std::unordered_map<std::string, InternId> ids_;
    std::vector<std::string> names_;
};

}  // namespace spectre::util
