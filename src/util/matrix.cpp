#include "util/matrix.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace spectre::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    SPECTRE_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    SPECTRE_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix Matrix::multiply(const Matrix& rhs) const {
    SPECTRE_REQUIRE(cols_ == rhs.rows_, "matrix dimension mismatch");
    Matrix out(rows_, rhs.cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(i, k);
            if (a == 0.0) continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

std::vector<double> Matrix::left_multiply(const std::vector<double>& v) const {
    SPECTRE_REQUIRE(v.size() == rows_, "vector dimension mismatch");
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double a = v[r];
        if (a == 0.0) continue;
        for (std::size_t c = 0; c < cols_; ++c) out[c] += a * (*this)(r, c);
    }
    return out;
}

std::vector<double> Matrix::right_multiply(const std::vector<double>& v) const {
    SPECTRE_REQUIRE(v.size() == cols_, "vector dimension mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix Matrix::blend(double a, const Matrix& rhs, double b) const {
    SPECTRE_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix dimension mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = a * data_[i] + b * rhs.data_[i];
    return out;
}

void Matrix::normalize_rows(std::size_t fallback_col) {
    SPECTRE_REQUIRE(fallback_col < cols_, "fallback column out of range");
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c);
        if (sum <= 0.0) {
            for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = 0.0;
            (*this)(r, fallback_col) = 1.0;
        } else {
            for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) /= sum;
        }
    }
}

bool Matrix::is_row_stochastic(double tol) const {
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            if ((*this)(r, c) < -tol) return false;
            sum += (*this)(r, c);
        }
        if (std::abs(sum - 1.0) > tol) return false;
    }
    return true;
}

}  // namespace spectre::util
