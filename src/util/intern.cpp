#include "util/intern.hpp"

#include "util/assert.hpp"

namespace spectre::util {

InternId InternTable::intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<InternId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
}

InternId InternTable::lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidIntern : it->second;
}

const std::string& InternTable::name(InternId id) const {
    SPECTRE_REQUIRE(id < names_.size(), "intern id out of range");
    return names_[id];
}

}  // namespace spectre::util
