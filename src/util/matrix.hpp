// Small dense row-major matrix of doubles.
//
// Sized for the Markov completion model (DESIGN.md §4.5): state spaces are
// capped at a few dozen states, so a simple contiguous buffer beats any
// sparse representation. Row-stochastic helpers support the model code.
#pragma once

#include <cstddef>
#include <vector>

namespace spectre::util {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    static Matrix identity(std::size_t n);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }

    double& at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    // Unchecked access for hot loops.
    double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

    Matrix multiply(const Matrix& rhs) const;

    // result[c] = sum_r v[r] * M[r][c]  (row vector times matrix)
    std::vector<double> left_multiply(const std::vector<double>& v) const;

    // result[r] = sum_c M[r][c] * v[c]  (matrix times column vector)
    std::vector<double> right_multiply(const std::vector<double>& v) const;

    // a*this + b*rhs, elementwise; used for exponential smoothing and the
    // paper's linear interpolation between precomputed powers (Fig. 5 line 6).
    Matrix blend(double a, const Matrix& rhs, double b) const;

    // Rescales every row to sum to 1 (rows summing to 0 become the unit row
    // pointing at `fallback_col`). Keeps run-time estimates stochastic even
    // with sparse statistics.
    void normalize_rows(std::size_t fallback_col);

    bool is_row_stochastic(double tol = 1e-9) const;

    bool operator==(const Matrix& rhs) const = default;

private:
    std::size_t rows_ = 0, cols_ = 0;
    std::vector<double> data_;
};

}  // namespace spectre::util
