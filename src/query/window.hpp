// Window specifications and window assignment.
//
// Three window kinds cover the paper's queries:
//   SlidingCount  — "WITHIN ws EVENTS FROM EVERY s EVENTS"   (Q2, Q3)
//   SlidingTime   — time-based sliding window
//   PredicateOpen — "WITHIN ws EVENTS FROM <pred>": a window opens at every
//                   event satisfying the open predicate (Q1's FROM MLE, QE's
//                   window per A event); extent is a count or a duration.
//
// assign_windows materializes WindowInfo {id, first, last} over an
// EventStore. Window IDs increase with the start event, which is the total
// order the dependency definition (§3.1) builds on. All kinds produce windows
// whose end position is monotone in their start position; overlapping
// predecessors of a window are therefore a contiguous id range — the
// dependency tree relies on this (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <vector>

#include "event/stream.hpp"
#include "query/predicate.hpp"

namespace spectre::query {

enum class WindowKind { SlidingCount, SlidingTime, PredicateOpen };
enum class ExtentKind { Count, Time };

struct WindowSpec {
    WindowKind kind = WindowKind::SlidingCount;

    // SlidingCount: size/slide in events. PredicateOpen+Count: size in events.
    std::uint64_t size = 0;
    std::uint64_t slide = 0;

    // SlidingTime / PredicateOpen+Time: duration/slide in timestamp units.
    event::Timestamp duration = 0;
    event::Timestamp time_slide = 0;

    Expr open_pred;  // PredicateOpen only
    ExtentKind extent = ExtentKind::Count;

    void validate() const;

    static WindowSpec sliding_count(std::uint64_t size, std::uint64_t slide);
    static WindowSpec sliding_time(event::Timestamp duration, event::Timestamp slide);
    static WindowSpec predicate_open_count(Expr open_pred, std::uint64_t size);
    static WindowSpec predicate_open_time(Expr open_pred, event::Timestamp duration);
};

struct WindowInfo {
    std::uint64_t id = 0;
    event::Seq first = 0;  // inclusive
    event::Seq last = 0;   // inclusive

    std::uint64_t length() const noexcept { return last - first + 1; }
    bool overlaps(const WindowInfo& other) const noexcept {
        return first <= other.last && other.first <= last;
    }
    bool operator==(const WindowInfo&) const = default;
};

// Materializes all windows over the store, in id order. Trailing windows are
// clamped to the end of the store (partial windows are still processed, as in
// the paper's streaming setting where the stream simply ends).
std::vector<WindowInfo> assign_windows(const event::EventStore& store, const WindowSpec& spec);

}  // namespace spectre::query
