// Window specifications and window assignment.
//
// Three window kinds cover the paper's queries:
//   SlidingCount  — "WITHIN ws EVENTS FROM EVERY s EVENTS"   (Q2, Q3)
//   SlidingTime   — time-based sliding window
//   PredicateOpen — "WITHIN ws EVENTS FROM <pred>": a window opens at every
//                   event satisfying the open predicate (Q1's FROM MLE, QE's
//                   window per A event); extent is a count or a duration.
//
// WindowAssigner enumerates WindowInfo {id, first, last} *incrementally* from
// the events that have arrived so far (DESIGN.md §6): count-extent windows
// are emitted the moment their start event arrives — as in the paper, where
// the splitter opens a window when its start event shows up — while
// time-extent windows are emitted once their end position is determined by
// arrival. assign_windows is the batch wrapper over a complete store. Window
// IDs increase with the start event, which is the total order the dependency
// definition (§3.1) builds on. All kinds produce windows whose end position
// is monotone in their start position; overlapping predecessors of a window
// are therefore a contiguous id range — the dependency tree relies on this
// (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "event/stream.hpp"
#include "query/predicate.hpp"

namespace spectre::query {

enum class WindowKind { SlidingCount, SlidingTime, PredicateOpen };
enum class ExtentKind { Count, Time };

struct WindowSpec {
    WindowKind kind = WindowKind::SlidingCount;

    // SlidingCount: size/slide in events. PredicateOpen+Count: size in events.
    std::uint64_t size = 0;
    std::uint64_t slide = 0;

    // SlidingTime / PredicateOpen+Time: duration/slide in timestamp units.
    event::Timestamp duration = 0;
    event::Timestamp time_slide = 0;

    Expr open_pred;  // PredicateOpen only
    ExtentKind extent = ExtentKind::Count;

    void validate() const;

    static WindowSpec sliding_count(std::uint64_t size, std::uint64_t slide);
    static WindowSpec sliding_time(event::Timestamp duration, event::Timestamp slide);
    static WindowSpec predicate_open_count(Expr open_pred, std::uint64_t size);
    static WindowSpec predicate_open_time(Expr open_pred, event::Timestamp duration);
};

struct WindowInfo {
    std::uint64_t id = 0;
    event::Seq first = 0;  // inclusive
    event::Seq last = 0;   // inclusive

    std::uint64_t length() const noexcept { return last - first + 1; }
    bool overlaps(const WindowInfo& other) const noexcept {
        return first <= other.last && other.first <= last;
    }
    bool operator==(const WindowInfo&) const = default;
};

// Arrival-driven window enumeration (DESIGN.md §6). The caller polls with the
// store's current frontier; every window whose placement is determined by the
// arrived prefix is appended to `out`, in id order. Timestamps are assumed
// nondecreasing in stream order (DESIGN.md §2).
//
// Count-extent windows are emitted as soon as their start event arrives, with
// `last = first + size - 1` — an *extent bound*, not a promise that the
// stream reaches that far. A window cut short by end-of-stream keeps its
// bound; consumers finish it at the final frontier (the operator instances'
// end-of-stream clamp, the sequential engine's `pos < n` guard). Keeping the
// bound instead of clamping preserves "window ends monotone in starts" even
// when a trailing window is emitted after close (DESIGN.md §5).
//
// Time-extent windows are emitted once their last event is known: the first
// event at/after the closing timestamp arrived, or the stream closed.
class WindowAssigner {
public:
    explicit WindowAssigner(const WindowSpec& spec);

    // Scans arrived events [0, frontier) and appends every newly determined
    // window to `out`; `closed` marks end-of-stream. Returns the number of
    // windows appended. Frontier must be monotone across calls, and once
    // `closed` is passed as true the frontier must be final.
    std::size_t poll(const event::EventStore& store, event::Seq frontier, bool closed,
                     std::vector<WindowInfo>& out);

    // True once the stream closed and every window has been emitted.
    bool exhausted() const noexcept { return exhausted_; }

private:
    WindowSpec spec_;
    std::uint64_t next_id_ = 0;
    bool exhausted_ = false;

    // SlidingCount: next window start position.
    event::Seq next_start_ = 0;

    // SlidingTime: next window start timestamp plus the monotone first/last
    // scan positions of the window currently being determined.
    bool have_origin_ = false;
    event::Timestamp next_start_ts_ = 0;
    event::Seq time_first_ = 0;
    event::Seq time_last_ = 0;
    bool time_last_valid_ = false;

    // PredicateOpen: next position to test the open predicate; time-extent
    // windows whose end is not yet determined wait in pending_starts_.
    event::Seq scan_ = 0;
    std::deque<event::Seq> pending_starts_;
    event::Seq pending_last_ = 0;
    bool pending_last_valid_ = false;
};

// Batch wrapper: materializes all windows over a complete store, in id order.
// Trailing windows are clamped to the end of the store (partial windows are
// still processed, as in the paper's streaming setting where the stream
// simply ends).
std::vector<WindowInfo> assign_windows(const event::EventStore& store, const WindowSpec& spec);

}  // namespace spectre::query
