// Text query language: MATCH-RECOGNIZE-style notation extended — exactly as
// the paper extends it (§4.1) — with `WITHIN ... FROM ...` windows (from
// Tesla) and a `CONSUME` clause for consumption policies.
//
// Grammar (case-insensitive keywords; [] optional, {} repeated):
//
//   query    :=  PATTERN '(' element {element} ')'
//                [DEFINE def {',' def}]
//                [GUARD gdef {',' gdef}]
//                WITHIN num (EVENTS|TIME) FROM (EVERY num (EVENTS|TIME) | name)
//                [PARTITION BY (SUBJECT | attr-name)]
//                [SELECT (FIRST|EACH)]
//                [CONSUME (ALL | NONE | '(' name {name} ')')]
//                [EMIT name '=' expr {',' name '=' expr}]
//
//   element  :=  name ['+']  |  SET '(' name {name} ')'
//   def      :=  name AS expr          — predicate for element / SET member
//   gdef     :=  name AS expr          — negation guard on element `name`
//
//   expr     :=  or-precedence expression over:
//                  numbers; attribute names (current event);
//                  name '.' attr (event bound to an earlier element/member;
//                  a self-reference inside the element's own DEFINE means the
//                  current event, as in Q1's "RE1.closePrice > RE1.openPrice");
//                  SYMBOL = 'sym', SYMBOL != 'sym', SYMBOL IN ('a','b',…);
//                  TYPE = 'name', TYPE != 'name';
//                  comparisons < <= > >= = !=, arithmetic + - * /,
//                  AND OR NOT, parentheses.
//
// `FROM name` makes a predicate-open window: a window opens at every event
// satisfying that element's DEFINE (Q1's "WITHIN ws events FROM MLE").
// Elements without a DEFINE entry and undefined names are errors; SET members
// must all be defined. Attribute and type/symbol names are interned into the
// query's schema as encountered.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "query/query.hpp"

namespace spectre::query {

class ParseError : public std::runtime_error {
public:
    ParseError(const std::string& msg, std::size_t pos)
        : std::runtime_error(msg + " (at offset " + std::to_string(pos) + ")"), pos_(pos) {}
    std::size_t position() const noexcept { return pos_; }

private:
    std::size_t pos_;
};

// Parses `text` into a Query whose names are interned into `schema`.
// Throws ParseError on malformed input.
Query parse_query(const std::string& text, std::shared_ptr<event::Schema> schema);

}  // namespace spectre::query
