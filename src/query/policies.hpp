// Selection and consumption policies (§2.1, §5).
//
// SelectionPolicy controls how many partial-match attempts a window runs:
//   First — a single attempt per window; this is the configuration the paper
//           evaluates ("the number of created consumption groups is limited
//           to one per window version", §4.2).
//   Each  — unbounded concurrent attempts; every event that can start the
//           pattern opens a new partial match (and hence consumption group).
//
// ConsumptionPolicy controls which constituents are consumed when a match
// completes: none of them, all of them, or a named subset of pattern elements
// (the paper's "selected B"). Consumption is always all-or-nothing at match
// completion — never for partial matches (§2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spectre::query {

enum class SelectionPolicy { First, Each };

struct ConsumptionPolicy {
    enum class Kind { None, All, Subset };

    Kind kind = Kind::None;
    std::vector<std::string> elements;  // Subset: binding names to consume

    static ConsumptionPolicy none();
    static ConsumptionPolicy all();
    static ConsumptionPolicy subset(std::vector<std::string> elements);
};

std::string to_string(SelectionPolicy p);
std::string to_string(const ConsumptionPolicy& p);

}  // namespace spectre::query
