#include "query/pattern.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace spectre::query {

int Pattern::min_length() const {
    int n = 0;
    for (const auto& e : elements) {
        switch (e.kind) {
            case ElementKind::Single:
            case ElementKind::Plus:  // Plus needs at least one event
                n += 1;
                break;
            case ElementKind::Set:
                n += static_cast<int>(e.members.size());
                break;
        }
    }
    return n;
}

int Pattern::element_index(const std::string& name) const {
    for (std::size_t i = 0; i < elements.size(); ++i)
        if (elements[i].name == name) return static_cast<int>(i);
    return -1;
}

int Pattern::binding_slot(const std::string& name) const {
    int slot = 0;
    for (const auto& e : elements) {
        if (e.name == name) return slot;
        ++slot;
        for (const auto& m : e.members) {
            if (m.name == name) return slot;
            ++slot;
        }
    }
    return -1;
}

int Pattern::binding_count() const {
    int slot = 0;
    for (const auto& e : elements) slot += 1 + static_cast<int>(e.members.size());
    return slot;
}

int Pattern::element_slot(std::size_t elem) const {
    SPECTRE_REQUIRE(elem < elements.size(), "element index out of range");
    int slot = 0;
    for (std::size_t i = 0; i < elem; ++i)
        slot += 1 + static_cast<int>(elements[i].members.size());
    return slot;
}

int Pattern::member_slot(std::size_t elem, std::size_t member) const {
    SPECTRE_REQUIRE(elem < elements.size(), "element index out of range");
    SPECTRE_REQUIRE(member < elements[elem].members.size(), "member index out of range");
    return element_slot(elem) + 1 + static_cast<int>(member);
}

void Pattern::validate() const {
    SPECTRE_REQUIRE(!elements.empty(), "pattern must have at least one element");
    bool non_sticky_seen = false;
    for (const auto& e : elements) {
        if (e.sticky) {
            SPECTRE_REQUIRE(!non_sticky_seen, "sticky elements must form a pattern prefix");
            SPECTRE_REQUIRE(e.kind == ElementKind::Single, "sticky elements must be Single");
        } else {
            non_sticky_seen = true;
        }
    }
    SPECTRE_REQUIRE(non_sticky_seen, "pattern cannot be entirely sticky");
    std::unordered_set<std::string> names;
    for (const auto& e : elements) {
        SPECTRE_REQUIRE(!e.name.empty(), "pattern element needs a binding name");
        SPECTRE_REQUIRE(names.insert(e.name).second, "duplicate binding name: " + e.name);
        if (e.kind == ElementKind::Set) {
            SPECTRE_REQUIRE(!e.members.empty(), "SET element needs members: " + e.name);
            SPECTRE_REQUIRE(e.members.size() <= 1024, "SET element limited to 1024 members");
            SPECTRE_REQUIRE(e.pred == nullptr, "SET element must not carry its own predicate");
            for (const auto& m : e.members) {
                SPECTRE_REQUIRE(m.pred != nullptr, "SET member needs a predicate: " + m.name);
                SPECTRE_REQUIRE(!m.name.empty(), "SET member needs a name");
                SPECTRE_REQUIRE(names.insert(m.name).second,
                                "duplicate binding name: " + m.name);
            }
        } else {
            SPECTRE_REQUIRE(e.pred != nullptr, "element needs a predicate: " + e.name);
            SPECTRE_REQUIRE(e.members.empty(), "non-SET element must not have members");
        }
    }
}

}  // namespace spectre::query
