#include "query/predicate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace spectre::query {

namespace {
Expr make(ExprNode n) { return std::make_shared<const ExprNode>(std::move(n)); }
}  // namespace

Expr constant(double v) {
    ExprNode n;
    n.kind = ExprNode::Kind::Const;
    n.value = v;
    return make(std::move(n));
}

Expr attr(event::AttrSlot slot) {
    ExprNode n;
    n.kind = ExprNode::Kind::Attr;
    n.slot = slot;
    return make(std::move(n));
}

Expr bound_attr(int element, event::AttrSlot slot) {
    SPECTRE_REQUIRE(element >= 0, "bound_attr element must be non-negative");
    ExprNode n;
    n.kind = ExprNode::Kind::BoundAttr;
    n.element = element;
    n.slot = slot;
    return make(std::move(n));
}

Expr subject_in(std::vector<event::SubjectId> subjects) {
    std::sort(subjects.begin(), subjects.end());
    subjects.erase(std::unique(subjects.begin(), subjects.end()), subjects.end());
    ExprNode n;
    n.kind = ExprNode::Kind::SubjectIn;
    n.subjects = std::move(subjects);
    return make(std::move(n));
}

Expr type_is(event::TypeId type) {
    ExprNode n;
    n.kind = ExprNode::Kind::TypeIs;
    n.type = type;
    return make(std::move(n));
}

Expr binary(BinOp op, Expr lhs, Expr rhs) {
    SPECTRE_REQUIRE(lhs && rhs, "binary expression operands must be non-null");
    ExprNode n;
    n.kind = ExprNode::Kind::Binary;
    n.bop = op;
    n.lhs = std::move(lhs);
    n.rhs = std::move(rhs);
    return make(std::move(n));
}

Expr unary(UnOp op, Expr operand) {
    SPECTRE_REQUIRE(operand, "unary expression operand must be non-null");
    ExprNode n;
    n.kind = ExprNode::Kind::Unary;
    n.uop = op;
    n.lhs = std::move(operand);
    return make(std::move(n));
}

double eval(const ExprNode& e, const EvalContext& ctx, bool& ok) {
    switch (e.kind) {
        case ExprNode::Kind::Const:
            return e.value;
        case ExprNode::Kind::Attr:
            SPECTRE_CHECK(ctx.current != nullptr, "Attr evaluated without current event");
            return ctx.current->attr(e.slot);
        case ExprNode::Kind::BoundAttr: {
            const auto idx = static_cast<std::size_t>(e.element);
            if (idx >= ctx.bound.size() || ctx.bound[idx] == nullptr) {
                ok = false;
                return 0.0;
            }
            return ctx.bound[idx]->attr(e.slot);
        }
        case ExprNode::Kind::SubjectIn: {
            SPECTRE_CHECK(ctx.current != nullptr, "SubjectIn evaluated without current event");
            const bool hit = std::binary_search(e.subjects.begin(), e.subjects.end(),
                                                ctx.current->subject);
            return hit ? 1.0 : 0.0;
        }
        case ExprNode::Kind::TypeIs:
            SPECTRE_CHECK(ctx.current != nullptr, "TypeIs evaluated without current event");
            return ctx.current->type == e.type ? 1.0 : 0.0;
        case ExprNode::Kind::Unary: {
            const double v = eval(*e.lhs, ctx, ok);
            return e.uop == UnOp::Neg ? -v : (v == 0.0 ? 1.0 : 0.0);
        }
        case ExprNode::Kind::Binary: {
            // Short-circuit the logical operators so an unbound reference on
            // the irrelevant side does not poison the result.
            if (e.bop == BinOp::And) {
                bool lok = true;
                const bool l = eval(*e.lhs, ctx, lok) != 0.0 && lok;
                if (!l) return 0.0;
                return eval_bool(e.rhs, ctx) ? 1.0 : 0.0;
            }
            if (e.bop == BinOp::Or) {
                bool lok = true;
                const bool l = eval(*e.lhs, ctx, lok) != 0.0 && lok;
                if (l) return 1.0;
                return eval_bool(e.rhs, ctx) ? 1.0 : 0.0;
            }
            const double l = eval(*e.lhs, ctx, ok);
            const double r = eval(*e.rhs, ctx, ok);
            switch (e.bop) {
                case BinOp::Add: return l + r;
                case BinOp::Sub: return l - r;
                case BinOp::Mul: return l * r;
                case BinOp::Div: return l / r;
                case BinOp::Lt: return l < r ? 1.0 : 0.0;
                case BinOp::Le: return l <= r ? 1.0 : 0.0;
                case BinOp::Gt: return l > r ? 1.0 : 0.0;
                case BinOp::Ge: return l >= r ? 1.0 : 0.0;
                case BinOp::Eq: return l == r ? 1.0 : 0.0;
                case BinOp::Ne: return l != r ? 1.0 : 0.0;
                default: break;
            }
            SPECTRE_CHECK(false, "unhandled binary operator");
        }
    }
    SPECTRE_CHECK(false, "unhandled expression kind");
}

bool eval_bool(const Expr& e, const EvalContext& ctx) {
    SPECTRE_REQUIRE(e != nullptr, "eval_bool on null expression");
    bool ok = true;
    const double v = eval(*e, ctx, ok);
    return ok && v != 0.0;
}

namespace {
const char* op_name(BinOp op) {
    switch (op) {
        case BinOp::Add: return "+";
        case BinOp::Sub: return "-";
        case BinOp::Mul: return "*";
        case BinOp::Div: return "/";
        case BinOp::Lt: return "<";
        case BinOp::Le: return "<=";
        case BinOp::Gt: return ">";
        case BinOp::Ge: return ">=";
        case BinOp::Eq: return "=";
        case BinOp::Ne: return "!=";
        case BinOp::And: return "AND";
        case BinOp::Or: return "OR";
    }
    return "?";
}
}  // namespace

std::string to_string(const ExprNode& e, const event::Schema& schema) {
    std::ostringstream os;
    switch (e.kind) {
        case ExprNode::Kind::Const:
            os << e.value;
            break;
        case ExprNode::Kind::Attr:
            os << schema.attr_name(e.slot);
            break;
        case ExprNode::Kind::BoundAttr:
            os << "elem" << e.element << '.' << schema.attr_name(e.slot);
            break;
        case ExprNode::Kind::SubjectIn: {
            os << "SYMBOL IN (";
            for (std::size_t i = 0; i < e.subjects.size(); ++i) {
                if (i) os << ',';
                os << '\'' << schema.subject_name(e.subjects[i]) << '\'';
            }
            os << ')';
            break;
        }
        case ExprNode::Kind::TypeIs:
            os << "TYPE = '" << schema.type_name(e.type) << '\'';
            break;
        case ExprNode::Kind::Unary:
            os << (e.uop == UnOp::Neg ? "-" : "NOT ") << '(' << to_string(*e.lhs, schema) << ')';
            break;
        case ExprNode::Kind::Binary:
            os << '(' << to_string(*e.lhs, schema) << ' ' << op_name(e.bop) << ' '
               << to_string(*e.rhs, schema) << ')';
            break;
    }
    return os.str();
}

}  // namespace spectre::query
