#include "query/window.hpp"

#include "util/assert.hpp"

namespace spectre::query {

void WindowSpec::validate() const {
    switch (kind) {
        case WindowKind::SlidingCount:
            SPECTRE_REQUIRE(size > 0, "sliding-count window needs size > 0");
            SPECTRE_REQUIRE(slide > 0, "sliding-count window needs slide > 0");
            break;
        case WindowKind::SlidingTime:
            SPECTRE_REQUIRE(duration > 0, "sliding-time window needs duration > 0");
            SPECTRE_REQUIRE(time_slide > 0, "sliding-time window needs slide > 0");
            break;
        case WindowKind::PredicateOpen:
            SPECTRE_REQUIRE(open_pred != nullptr, "predicate window needs an open predicate");
            if (extent == ExtentKind::Count)
                SPECTRE_REQUIRE(size > 0, "predicate window needs size > 0");
            else
                SPECTRE_REQUIRE(duration > 0, "predicate window needs duration > 0");
            break;
    }
}

WindowSpec WindowSpec::sliding_count(std::uint64_t size, std::uint64_t slide) {
    WindowSpec w;
    w.kind = WindowKind::SlidingCount;
    w.size = size;
    w.slide = slide;
    w.validate();
    return w;
}

WindowSpec WindowSpec::sliding_time(event::Timestamp duration, event::Timestamp slide) {
    WindowSpec w;
    w.kind = WindowKind::SlidingTime;
    w.duration = duration;
    w.time_slide = slide;
    w.validate();
    return w;
}

WindowSpec WindowSpec::predicate_open_count(Expr open_pred, std::uint64_t size) {
    WindowSpec w;
    w.kind = WindowKind::PredicateOpen;
    w.open_pred = std::move(open_pred);
    w.extent = ExtentKind::Count;
    w.size = size;
    w.validate();
    return w;
}

WindowSpec WindowSpec::predicate_open_time(Expr open_pred, event::Timestamp duration) {
    WindowSpec w;
    w.kind = WindowKind::PredicateOpen;
    w.open_pred = std::move(open_pred);
    w.extent = ExtentKind::Time;
    w.duration = duration;
    w.validate();
    return w;
}

namespace {

// Last position whose timestamp is still within [ts(first), ts(first)+dur).
event::Seq time_extent_end(const event::EventStore& store, event::Seq first,
                           event::Timestamp dur) {
    const event::Timestamp limit = store.at(first).ts + dur;
    event::Seq last = first;
    while (last + 1 < store.size() && store.at(last + 1).ts < limit) ++last;
    return last;
}

}  // namespace

std::vector<WindowInfo> assign_windows(const event::EventStore& store, const WindowSpec& spec) {
    spec.validate();
    std::vector<WindowInfo> out;
    if (store.empty()) return out;
    const event::Seq n = store.size();

    switch (spec.kind) {
        case WindowKind::SlidingCount: {
            for (event::Seq start = 0; start < n; start += spec.slide) {
                WindowInfo w;
                w.id = out.size();
                w.first = start;
                w.last = std::min<event::Seq>(start + spec.size - 1, n - 1);
                out.push_back(w);
            }
            break;
        }
        case WindowKind::SlidingTime: {
            const event::Timestamp t0 = store.at(0).ts;
            const event::Timestamp t_end = store.at(n - 1).ts;
            event::Seq first = 0;
            for (event::Timestamp start = t0; start <= t_end; start += spec.time_slide) {
                while (first < n && store.at(first).ts < start) ++first;
                if (first >= n) break;
                event::Seq last = first;
                while (last + 1 < n && store.at(last + 1).ts < start + spec.duration) ++last;
                WindowInfo w;
                w.id = out.size();
                w.first = first;
                w.last = last;
                out.push_back(w);
            }
            break;
        }
        case WindowKind::PredicateOpen: {
            for (event::Seq pos = 0; pos < n; ++pos) {
                const event::Event& e = store.at(pos);
                EvalContext ctx;
                ctx.current = &e;
                if (!eval_bool(spec.open_pred, ctx)) continue;
                WindowInfo w;
                w.id = out.size();
                w.first = pos;
                w.last = spec.extent == ExtentKind::Count
                             ? std::min<event::Seq>(pos + spec.size - 1, n - 1)
                             : time_extent_end(store, pos, spec.duration);
                out.push_back(w);
            }
            break;
        }
    }
    return out;
}

}  // namespace spectre::query
