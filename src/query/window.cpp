#include "query/window.hpp"

#include "util/assert.hpp"

namespace spectre::query {

void WindowSpec::validate() const {
    switch (kind) {
        case WindowKind::SlidingCount:
            SPECTRE_REQUIRE(size > 0, "sliding-count window needs size > 0");
            SPECTRE_REQUIRE(slide > 0, "sliding-count window needs slide > 0");
            break;
        case WindowKind::SlidingTime:
            SPECTRE_REQUIRE(duration > 0, "sliding-time window needs duration > 0");
            SPECTRE_REQUIRE(time_slide > 0, "sliding-time window needs slide > 0");
            break;
        case WindowKind::PredicateOpen:
            SPECTRE_REQUIRE(open_pred != nullptr, "predicate window needs an open predicate");
            if (extent == ExtentKind::Count)
                SPECTRE_REQUIRE(size > 0, "predicate window needs size > 0");
            else
                SPECTRE_REQUIRE(duration > 0, "predicate window needs duration > 0");
            break;
    }
}

WindowSpec WindowSpec::sliding_count(std::uint64_t size, std::uint64_t slide) {
    WindowSpec w;
    w.kind = WindowKind::SlidingCount;
    w.size = size;
    w.slide = slide;
    w.validate();
    return w;
}

WindowSpec WindowSpec::sliding_time(event::Timestamp duration, event::Timestamp slide) {
    WindowSpec w;
    w.kind = WindowKind::SlidingTime;
    w.duration = duration;
    w.time_slide = slide;
    w.validate();
    return w;
}

WindowSpec WindowSpec::predicate_open_count(Expr open_pred, std::uint64_t size) {
    WindowSpec w;
    w.kind = WindowKind::PredicateOpen;
    w.open_pred = std::move(open_pred);
    w.extent = ExtentKind::Count;
    w.size = size;
    w.validate();
    return w;
}

WindowSpec WindowSpec::predicate_open_time(Expr open_pred, event::Timestamp duration) {
    WindowSpec w;
    w.kind = WindowKind::PredicateOpen;
    w.open_pred = std::move(open_pred);
    w.extent = ExtentKind::Time;
    w.duration = duration;
    w.validate();
    return w;
}

WindowAssigner::WindowAssigner(const WindowSpec& spec) : spec_(spec) { spec_.validate(); }

std::size_t WindowAssigner::poll(const event::EventStore& store, event::Seq frontier,
                                 bool closed, std::vector<WindowInfo>& out) {
    if (exhausted_) return 0;
    const std::size_t before = out.size();

    switch (spec_.kind) {
        case WindowKind::SlidingCount: {
            // A window exists at every slide-multiple start that has arrived.
            while (next_start_ < frontier) {
                out.push_back({next_id_++, next_start_, next_start_ + spec_.size - 1});
                next_start_ += spec_.slide;
            }
            if (closed) exhausted_ = true;
            break;
        }
        case WindowKind::SlidingTime: {
            if (!have_origin_) {
                if (frontier == 0) {
                    if (closed) exhausted_ = true;
                    break;
                }
                next_start_ts_ = store.at(0).ts;
                have_origin_ = true;
            }
            for (;;) {
                // First event of the window being determined.
                while (time_first_ < frontier && store.at(time_first_).ts < next_start_ts_)
                    ++time_first_;
                if (time_first_ >= frontier) {
                    // No event at/after this start has arrived. If the stream
                    // closed none ever will: enumeration is over.
                    if (closed) exhausted_ = true;
                    break;
                }
                if (!time_last_valid_) {
                    time_last_ = time_first_;
                    time_last_valid_ = true;
                }
                const event::Timestamp limit = next_start_ts_ + spec_.duration;
                while (time_last_ + 1 < frontier && store.at(time_last_ + 1).ts < limit)
                    ++time_last_;
                const bool end_known =
                    closed || (time_last_ + 1 < frontier &&
                               store.at(time_last_ + 1).ts >= limit);
                if (!end_known) break;  // wait for the closing event
                out.push_back({next_id_++, time_first_, time_last_});
                next_start_ts_ += spec_.time_slide;
                time_last_valid_ = false;
            }
            break;
        }
        case WindowKind::PredicateOpen: {
            while (scan_ < frontier) {
                const event::Event& e = store.at(scan_);
                EvalContext ctx;
                ctx.current = &e;
                if (eval_bool(spec_.open_pred, ctx)) {
                    if (spec_.extent == ExtentKind::Count)
                        out.push_back({next_id_++, scan_, scan_ + spec_.size - 1});
                    else
                        pending_starts_.push_back(scan_);
                }
                ++scan_;
            }
            // Time-extent windows finalize in start order: with nondecreasing
            // timestamps their closing positions are monotone too.
            while (!pending_starts_.empty()) {
                const event::Seq first = pending_starts_.front();
                if (!pending_last_valid_) {
                    pending_last_ = first;
                    pending_last_valid_ = true;
                }
                const event::Timestamp limit = store.at(first).ts + spec_.duration;
                while (pending_last_ + 1 < frontier &&
                       store.at(pending_last_ + 1).ts < limit)
                    ++pending_last_;
                const bool end_known =
                    closed || (pending_last_ + 1 < frontier &&
                               store.at(pending_last_ + 1).ts >= limit);
                if (!end_known) break;
                out.push_back({next_id_++, first, pending_last_});
                pending_starts_.pop_front();
                pending_last_valid_ = false;
            }
            if (closed && pending_starts_.empty()) exhausted_ = true;
            break;
        }
    }
    return out.size() - before;
}

std::vector<WindowInfo> assign_windows(const event::EventStore& store, const WindowSpec& spec) {
    std::vector<WindowInfo> out;
    WindowAssigner assigner(spec);
    assigner.poll(store, store.size(), /*closed=*/true, out);
    // Batch callers iterate [first, last] directly; clamp count-extent bounds
    // that reach past the end of the store.
    if (!out.empty()) {
        const event::Seq max_last = store.size() - 1;
        for (auto& w : out) w.last = std::min(w.last, max_last);
    }
    return out;
}

}  // namespace spectre::query
