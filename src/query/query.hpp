// Query: the complete, validated specification an engine executes.
//
// Build one either with QueryBuilder (programmatic, type-safe) or with
// parse_query() (the MATCH-RECOGNIZE-style text language, parser.hpp). A
// Query owns its Schema via shared_ptr; engines and datasets share it so
// interned ids agree across the whole pipeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "query/pattern.hpp"
#include "query/policies.hpp"
#include "query/window.hpp"

namespace spectre::query {

struct PayloadDef {
    std::string name;  // complex-event attribute name
    Expr expr;         // evaluated over the bound constituent events
};

// Key-based data parallelism declaration (DESIGN.md §10). A query with a
// partition key applies independently to each distinct key value's
// sub-stream: windows, matches, selection/consumption state and match
// budgets are all scoped per key (the MATCH_RECOGNIZE "PARTITION BY"
// semantics). The key is either the event subject or one numeric attribute
// (grouped by exact bit pattern). Because every key's sub-stream is
// independent, a sharded runtime may distribute keys over any number of
// shards without changing the output (shard/sharded_engine.hpp).
struct PartitionBy {
    enum class Kind { None, Subject, Attr };
    Kind kind = Kind::None;
    event::AttrSlot slot = 0;  // Attr only

    bool active() const noexcept { return kind != Kind::None; }
    static PartitionBy none() { return {}; }
    static PartitionBy subject() { return {Kind::Subject, 0}; }
    static PartitionBy attr(event::AttrSlot slot) { return {Kind::Attr, slot}; }
    bool operator==(const PartitionBy&) const = default;
};

// Resolves a partition-key name against the schema: "SUBJECT" (any case)
// selects the event subject, anything else must be an interned attribute
// name. Throws std::invalid_argument on an unknown attribute.
PartitionBy resolve_partition_key(const std::string& name, const event::Schema& schema);

struct Query {
    std::shared_ptr<event::Schema> schema;
    Pattern pattern;
    WindowSpec window;
    SelectionPolicy selection = SelectionPolicy::First;
    ConsumptionPolicy consumption = ConsumptionPolicy::none();
    std::vector<PayloadDef> payload;
    PartitionBy partition;  // None = the whole stream is one partition

    // Upper bound on partial-match attempts (= consumption groups) started
    // per window. 0 means unbounded. SelectionPolicy::First forces 1.
    int max_matches_per_window = 1;

    void validate() const;
};

// Fluent builder. Typical use:
//   auto q = QueryBuilder(schema)
//       .single("A", type_is(a))
//       .plus("B", attr(close) > attr(open))     // via binary(...)
//       .window(WindowSpec::sliding_count(1000, 100))
//       .consume_all()
//       .build();
class QueryBuilder {
public:
    explicit QueryBuilder(std::shared_ptr<event::Schema> schema);

    QueryBuilder& single(std::string name, Expr pred);
    QueryBuilder& plus(std::string name, Expr pred);
    QueryBuilder& set(std::string name, std::vector<SetMember> members);
    // Attaches a negation guard to the most recently added element.
    QueryBuilder& guard(Expr guard);
    // Marks the most recently added element sticky (see Element::sticky).
    QueryBuilder& sticky();

    QueryBuilder& window(WindowSpec spec);
    QueryBuilder& partition_by_subject();
    QueryBuilder& partition_by_attr(event::AttrSlot slot);
    QueryBuilder& select(SelectionPolicy policy);
    QueryBuilder& consume_none();
    QueryBuilder& consume_all();
    QueryBuilder& consume(std::vector<std::string> elements);
    QueryBuilder& emit(std::string name, Expr expr);
    QueryBuilder& max_matches(int n);

    Query build();

private:
    Query q_;
    bool window_set_ = false;
};

}  // namespace spectre::query
