#include "query/parser.hpp"

#include <cctype>
#include <optional>
#include <unordered_map>

#include "util/assert.hpp"

namespace spectre::query {

namespace {

// ---------------------------------------------------------------- tokenizer

enum class Tok {
    Ident, Number, String,
    LParen, RParen, Comma, Dot, Plus, Minus, Star, Slash,
    Lt, Le, Gt, Ge, Eq, Ne,
    End,
};

struct Token {
    Tok kind = Tok::End;
    std::string text;   // Ident (uppercased for keyword checks kept original), String contents
    double number = 0;
    std::size_t pos = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) { advance(); }

    const Token& peek() const { return current_; }

    Token take() {
        Token t = current_;
        advance();
        return t;
    }

    [[noreturn]] void fail(const std::string& msg) const { throw ParseError(msg, current_.pos); }

private:
    void advance() {
        while (i_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[i_]))) ++i_;
        current_ = Token{};
        current_.pos = i_;
        if (i_ >= text_.size()) {
            current_.kind = Tok::End;
            return;
        }
        const char c = text_[i_];
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i_ + 1 < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[i_ + 1])))) {
            std::size_t end = i_;
            while (end < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '.'))
                ++end;
            current_.kind = Tok::Number;
            current_.number = std::stod(text_.substr(i_, end - i_));
            i_ = end;
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t end = i_;
            while (end < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[end])) || text_[end] == '_'))
                ++end;
            current_.kind = Tok::Ident;
            current_.text = text_.substr(i_, end - i_);
            i_ = end;
            return;
        }
        if (c == '\'') {
            std::size_t end = i_ + 1;
            while (end < text_.size() && text_[end] != '\'') ++end;
            if (end >= text_.size()) throw ParseError("unterminated string literal", i_);
            current_.kind = Tok::String;
            current_.text = text_.substr(i_ + 1, end - i_ - 1);
            i_ = end + 1;
            return;
        }
        auto two = [&](char a, char b) {
            return c == a && i_ + 1 < text_.size() && text_[i_ + 1] == b;
        };
        if (two('<', '=')) { current_.kind = Tok::Le; i_ += 2; return; }
        if (two('>', '=')) { current_.kind = Tok::Ge; i_ += 2; return; }
        if (two('!', '=')) { current_.kind = Tok::Ne; i_ += 2; return; }
        switch (c) {
            case '(': current_.kind = Tok::LParen; break;
            case ')': current_.kind = Tok::RParen; break;
            case ',': current_.kind = Tok::Comma; break;
            case '.': current_.kind = Tok::Dot; break;
            case '+': current_.kind = Tok::Plus; break;
            case '-': current_.kind = Tok::Minus; break;
            case '*': current_.kind = Tok::Star; break;
            case '/': current_.kind = Tok::Slash; break;
            case '<': current_.kind = Tok::Lt; break;
            case '>': current_.kind = Tok::Gt; break;
            case '=': current_.kind = Tok::Eq; break;
            default: throw ParseError(std::string("unexpected character '") + c + "'", i_);
        }
        ++i_;
    }

    const std::string& text_;
    std::size_t i_ = 0;
    Token current_;
};

std::string upper(std::string s) {
    for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return s;
}

// ------------------------------------------------------------------- parser

class Parser {
public:
    Parser(const std::string& text, std::shared_ptr<event::Schema> schema)
        : lex_(text), schema_(std::move(schema)) {
        SPECTRE_REQUIRE(schema_ != nullptr, "parse_query needs a schema");
    }

    Query parse() {
        Query q;
        q.schema = schema_;
        expect_keyword("PATTERN");
        parse_pattern(q);
        if (is_keyword("DEFINE")) parse_defines();
        if (is_keyword("GUARD")) parse_guards();
        attach_definitions(q);
        expect_keyword("WITHIN");
        parse_window(q);
        if (is_keyword("PARTITION")) parse_partition(q);
        if (is_keyword("SELECT")) parse_select(q);
        if (is_keyword("STICKY")) parse_sticky(q);
        if (is_keyword("CONSUME")) parse_consume(q);
        if (is_keyword("EMIT")) parse_emit(q);
        if (lex_.peek().kind != Tok::End) lex_.fail("unexpected trailing input");
        q.validate();
        return q;
    }

private:
    // --- token helpers
    bool is_keyword(const char* kw) const {
        return lex_.peek().kind == Tok::Ident && upper(lex_.peek().text) == kw;
    }
    void expect_keyword(const char* kw) {
        if (!is_keyword(kw)) lex_.fail(std::string("expected keyword ") + kw);
        lex_.take();
    }
    void expect(Tok kind, const char* what) {
        if (lex_.peek().kind != kind) lex_.fail(std::string("expected ") + what);
        lex_.take();
    }
    std::string expect_ident(const char* what) {
        if (lex_.peek().kind != Tok::Ident) lex_.fail(std::string("expected ") + what);
        return lex_.take().text;
    }
    double expect_number(const char* what) {
        if (lex_.peek().kind != Tok::Number) lex_.fail(std::string("expected ") + what);
        return lex_.take().number;
    }

    // --- clauses
    void parse_pattern(Query& q) {
        expect(Tok::LParen, "'(' after PATTERN");
        int set_counter = 0;
        while (lex_.peek().kind != Tok::RParen) {
            if (is_keyword("SET")) {
                lex_.take();
                expect(Tok::LParen, "'(' after SET");
                Element e;
                e.kind = ElementKind::Set;
                e.name = "SET" + std::to_string(++set_counter);
                while (lex_.peek().kind != Tok::RParen) {
                    SetMember m;
                    m.name = expect_ident("SET member name");
                    e.members.push_back(std::move(m));
                }
                expect(Tok::RParen, "')' closing SET");
                q.pattern.elements.push_back(std::move(e));
            } else {
                Element e;
                e.name = expect_ident("pattern element name");
                e.kind = ElementKind::Single;
                if (lex_.peek().kind == Tok::Plus) {
                    lex_.take();
                    e.kind = ElementKind::Plus;
                }
                q.pattern.elements.push_back(std::move(e));
            }
        }
        expect(Tok::RParen, "')' closing PATTERN");
        if (q.pattern.elements.empty()) lex_.fail("PATTERN must contain at least one element");
        pattern_ = &q.pattern;
    }

    void parse_defines() {
        expect_keyword("DEFINE");
        while (true) {
            const std::string name = expect_ident("element name in DEFINE");
            expect_keyword("AS");
            defining_ = name;
            defs_[name] = parse_expr();
            defining_.clear();
            if (lex_.peek().kind != Tok::Comma) break;
            lex_.take();
        }
    }

    void parse_guards() {
        expect_keyword("GUARD");
        while (true) {
            const std::string name = expect_ident("element name in GUARD");
            expect_keyword("AS");
            defining_ = name;
            guards_[name] = parse_expr();
            defining_.clear();
            if (lex_.peek().kind != Tok::Comma) break;
            lex_.take();
        }
    }

    void attach_definitions(Query& q) {
        for (auto& e : q.pattern.elements) {
            if (e.kind == ElementKind::Set) {
                for (auto& m : e.members) {
                    auto it = defs_.find(m.name);
                    if (it == defs_.end())
                        lex_.fail("SET member '" + m.name + "' has no DEFINE entry");
                    m.pred = it->second;
                }
            } else {
                auto it = defs_.find(e.name);
                if (it == defs_.end())
                    lex_.fail("element '" + e.name + "' has no DEFINE entry");
                e.pred = it->second;
            }
            if (auto g = guards_.find(e.name); g != guards_.end()) e.guard = g->second;
        }
        for (const auto& [name, g] : guards_) {
            if (q.pattern.element_index(name) < 0)
                lex_.fail("GUARD names unknown element '" + name + "'");
        }
    }

    void parse_window(Query& q) {
        const double amount = expect_number("window size");
        const bool count_window = take_unit();
        expect_keyword("FROM");
        if (is_keyword("EVERY")) {
            lex_.take();
            const double slide = expect_number("window slide");
            const bool count_slide = take_unit();
            if (count_window != count_slide)
                lex_.fail("window size and slide must use the same unit");
            q.window = count_window
                           ? WindowSpec::sliding_count(static_cast<std::uint64_t>(amount),
                                                       static_cast<std::uint64_t>(slide))
                           : WindowSpec::sliding_time(static_cast<event::Timestamp>(amount),
                                                      static_cast<event::Timestamp>(slide));
        } else {
            const std::string name = expect_ident("opening element name after FROM");
            auto it = defs_.find(name);
            if (it == defs_.end()) lex_.fail("FROM names undefined element '" + name + "'");
            if (contains_bound_ref(*it->second))
                lex_.fail("open predicate of '" + name + "' must not reference other elements");
            q.window = count_window
                           ? WindowSpec::predicate_open_count(it->second,
                                                              static_cast<std::uint64_t>(amount))
                           : WindowSpec::predicate_open_time(
                                 it->second, static_cast<event::Timestamp>(amount));
        }
    }

    // Returns true for EVENTS, false for TIME.
    bool take_unit() {
        if (is_keyword("EVENTS")) {
            lex_.take();
            return true;
        }
        if (is_keyword("TIME")) {
            lex_.take();
            return false;
        }
        lex_.fail("expected unit EVENTS or TIME");
    }

    void parse_partition(Query& q) {
        expect_keyword("PARTITION");
        expect_keyword("BY");
        const std::string key = expect_ident("partition key (SUBJECT or attribute name)");
        try {
            q.partition = resolve_partition_key(key, *schema_);
        } catch (const std::invalid_argument& e) {
            lex_.fail(e.what());
        }
    }

    void parse_select(Query& q) {
        expect_keyword("SELECT");
        if (is_keyword("FIRST")) {
            lex_.take();
            q.selection = SelectionPolicy::First;
            q.max_matches_per_window = 1;
        } else if (is_keyword("EACH")) {
            lex_.take();
            q.selection = SelectionPolicy::Each;
            q.max_matches_per_window = 0;
        } else {
            lex_.fail("expected FIRST or EACH");
        }
    }

    void parse_sticky(Query& q) {
        expect_keyword("STICKY");
        expect(Tok::LParen, "'(' after STICKY");
        while (lex_.peek().kind != Tok::RParen) {
            const std::string name = expect_ident("element name in STICKY");
            const int idx = q.pattern.element_index(name);
            if (idx < 0) lex_.fail("STICKY names unknown element '" + name + "'");
            q.pattern.elements[static_cast<std::size_t>(idx)].sticky = true;
        }
        expect(Tok::RParen, "')' closing STICKY");
    }

    void parse_consume(Query& q) {
        expect_keyword("CONSUME");
        if (is_keyword("ALL")) {
            lex_.take();
            q.consumption = ConsumptionPolicy::all();
            return;
        }
        if (is_keyword("NONE")) {
            lex_.take();
            q.consumption = ConsumptionPolicy::none();
            return;
        }
        expect(Tok::LParen, "'(' after CONSUME");
        std::vector<std::string> names;
        while (lex_.peek().kind != Tok::RParen) {
            names.push_back(expect_ident("element name in CONSUME"));
            if (lex_.peek().kind == Tok::Plus) lex_.take();  // tolerate "B+" as in Q2's listing
        }
        expect(Tok::RParen, "')' closing CONSUME");
        if (names.empty()) lex_.fail("CONSUME list must not be empty");
        q.consumption = ConsumptionPolicy::subset(std::move(names));
    }

    void parse_emit(Query& q) {
        expect_keyword("EMIT");
        while (true) {
            PayloadDef def;
            def.name = expect_ident("payload attribute name");
            expect(Tok::Eq, "'=' in EMIT definition");
            def.expr = parse_expr();
            q.payload.push_back(std::move(def));
            if (lex_.peek().kind != Tok::Comma) break;
            lex_.take();
        }
    }

    // --- expressions (precedence climbing)
    Expr parse_expr() { return parse_or(); }

    Expr parse_or() {
        Expr lhs = parse_and();
        while (is_keyword("OR")) {
            lex_.take();
            lhs = binary(BinOp::Or, std::move(lhs), parse_and());
        }
        return lhs;
    }

    Expr parse_and() {
        Expr lhs = parse_not();
        while (is_keyword("AND")) {
            lex_.take();
            lhs = binary(BinOp::And, std::move(lhs), parse_not());
        }
        return lhs;
    }

    Expr parse_not() {
        if (is_keyword("NOT")) {
            lex_.take();
            return unary(UnOp::Not, parse_not());
        }
        return parse_cmp();
    }

    Expr parse_cmp() {
        Expr lhs = parse_add();
        const Tok k = lex_.peek().kind;
        std::optional<BinOp> op;
        switch (k) {
            case Tok::Lt: op = BinOp::Lt; break;
            case Tok::Le: op = BinOp::Le; break;
            case Tok::Gt: op = BinOp::Gt; break;
            case Tok::Ge: op = BinOp::Ge; break;
            case Tok::Eq: op = BinOp::Eq; break;
            case Tok::Ne: op = BinOp::Ne; break;
            default: break;
        }
        if (!op) return lhs;
        lex_.take();
        return binary(*op, std::move(lhs), parse_add());
    }

    Expr parse_add() {
        Expr lhs = parse_mul();
        while (lex_.peek().kind == Tok::Plus || lex_.peek().kind == Tok::Minus) {
            const BinOp op = lex_.take().kind == Tok::Plus ? BinOp::Add : BinOp::Sub;
            lhs = binary(op, std::move(lhs), parse_mul());
        }
        return lhs;
    }

    Expr parse_mul() {
        Expr lhs = parse_unary();
        while (lex_.peek().kind == Tok::Star || lex_.peek().kind == Tok::Slash) {
            const BinOp op = lex_.take().kind == Tok::Star ? BinOp::Mul : BinOp::Div;
            lhs = binary(op, std::move(lhs), parse_unary());
        }
        return lhs;
    }

    Expr parse_unary() {
        if (lex_.peek().kind == Tok::Minus) {
            lex_.take();
            return unary(UnOp::Neg, parse_unary());
        }
        return parse_primary();
    }

    Expr parse_primary() {
        const Token& t = lex_.peek();
        if (t.kind == Tok::Number) return constant(lex_.take().number);
        if (t.kind == Tok::LParen) {
            lex_.take();
            Expr e = parse_expr();
            expect(Tok::RParen, "')'");
            return e;
        }
        if (t.kind == Tok::Ident) {
            const std::string up = upper(t.text);
            if (up == "SYMBOL") return parse_subject_test();
            if (up == "TYPE") return parse_type_test();
            std::string name = lex_.take().text;
            if (lex_.peek().kind == Tok::Dot) {
                lex_.take();
                const std::string attr_name = expect_ident("attribute after '.'");
                // Self-reference inside the element's own DEFINE means the
                // current event (Q1: "RE1.closePrice > RE1.openPrice").
                if (name == defining_) return attr(schema_->intern_attr(attr_name));
                const int slot = pattern_ ? pattern_->binding_slot(name) : -1;
                if (slot < 0) lex_.fail("reference to unknown element '" + name + "'");
                return bound_attr(slot, schema_->intern_attr(attr_name));
            }
            // Bare identifier: attribute of the current event.
            return attr(schema_->intern_attr(name));
        }
        lex_.fail("expected expression");
    }

    Expr parse_subject_test() {
        expect_keyword("SYMBOL");
        if (is_keyword("IN")) {
            lex_.take();
            expect(Tok::LParen, "'(' after IN");
            std::vector<event::SubjectId> ids;
            while (lex_.peek().kind != Tok::RParen) {
                if (lex_.peek().kind != Tok::String) lex_.fail("expected symbol literal");
                ids.push_back(schema_->intern_subject(lex_.take().text));
                if (lex_.peek().kind == Tok::Comma) lex_.take();
            }
            expect(Tok::RParen, "')' closing IN list");
            if (ids.empty()) lex_.fail("SYMBOL IN list must not be empty");
            return subject_in(std::move(ids));
        }
        const bool negated = lex_.peek().kind == Tok::Ne;
        if (lex_.peek().kind != Tok::Eq && !negated) lex_.fail("expected = or != after SYMBOL");
        lex_.take();
        if (lex_.peek().kind != Tok::String) lex_.fail("expected symbol literal");
        Expr e = subject_in({schema_->intern_subject(lex_.take().text)});
        return negated ? unary(UnOp::Not, std::move(e)) : e;
    }

    Expr parse_type_test() {
        expect_keyword("TYPE");
        const bool negated = lex_.peek().kind == Tok::Ne;
        if (lex_.peek().kind != Tok::Eq && !negated) lex_.fail("expected = or != after TYPE");
        lex_.take();
        if (lex_.peek().kind != Tok::String) lex_.fail("expected type literal");
        Expr e = type_is(schema_->intern_type(lex_.take().text));
        return negated ? unary(UnOp::Not, std::move(e)) : e;
    }

    static bool contains_bound_ref(const ExprNode& e) {
        if (e.kind == ExprNode::Kind::BoundAttr) return true;
        if (e.lhs && contains_bound_ref(*e.lhs)) return true;
        if (e.rhs && contains_bound_ref(*e.rhs)) return true;
        return false;
    }

    Lexer lex_;
    std::shared_ptr<event::Schema> schema_;
    Pattern* pattern_ = nullptr;
    std::string defining_;  // element currently being defined (self-reference)
    std::unordered_map<std::string, Expr> defs_;
    std::unordered_map<std::string, Expr> guards_;
};

}  // namespace

Query parse_query(const std::string& text, std::shared_ptr<event::Schema> schema) {
    return Parser(text, std::move(schema)).parse();
}

}  // namespace spectre::query
