// Predicate / payload expression AST.
//
// Expressions are immutable trees shared via shared_ptr<const ExprNode>, so a
// compiled query can be handed to many operator-instance threads without
// copies or synchronization. They are evaluated against an EvalContext that
// provides the event under test plus the events already bound to earlier
// pattern elements — which is what makes cross-event constraints such as
// "A.x > B.x" (chart patterns, §5 related work) and computed payloads such as
// QE's `Factor = B.change / A.change` expressible.
//
// The detector's hot path does NOT walk these trees: CompiledQuery lowers
// them into flat detect::ExprProgram bytecode (DESIGN.md §5.1). eval() /
// eval_bool() remain the reference semantics — the parser, the window-open
// predicates, and the EvalMode::Tree differential baseline that the
// randomized tests and bench_detect_hot hold the bytecode bit-identical to.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "event/event.hpp"

namespace spectre::query {

enum class BinOp { Add, Sub, Mul, Div, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnOp { Neg, Not };

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

struct ExprNode {
    enum class Kind { Const, Attr, BoundAttr, SubjectIn, TypeIs, Binary, Unary };

    Kind kind = Kind::Const;
    double value = 0.0;                          // Const
    event::AttrSlot slot = 0;                    // Attr / BoundAttr
    int element = -1;                            // BoundAttr: pattern element index
    std::vector<event::SubjectId> subjects;      // SubjectIn (sorted)
    event::TypeId type = util::kInvalidIntern;   // TypeIs
    BinOp bop = BinOp::Add;                      // Binary
    UnOp uop = UnOp::Neg;                        // Unary
    Expr lhs, rhs;
};

// Evaluation context: the event under test plus, for BoundAttr, the first
// event bound to each earlier pattern element (nullptr if unbound).
struct EvalContext {
    const event::Event* current = nullptr;
    std::span<const event::Event* const> bound;
};

// --- factory helpers -------------------------------------------------------
Expr constant(double v);
Expr attr(event::AttrSlot slot);
Expr bound_attr(int element, event::AttrSlot slot);
Expr subject_in(std::vector<event::SubjectId> subjects);
Expr type_is(event::TypeId type);
Expr binary(BinOp op, Expr lhs, Expr rhs);
Expr unary(UnOp op, Expr operand);

// Numeric evaluation; boolean operators yield 0.0/1.0. A BoundAttr whose
// element is unbound makes the whole expression false/0 (the predicate cannot
// hold yet) — eval() reports this through `ok`.
double eval(const ExprNode& e, const EvalContext& ctx, bool& ok);

// Convenience: truthiness with unbound references mapping to false.
bool eval_bool(const Expr& e, const EvalContext& ctx);

// Human-readable rendering (for logs and parser round-trip tests).
std::string to_string(const ExprNode& e, const event::Schema& schema);

}  // namespace spectre::query
