// Pattern AST: what a query searches for inside one window.
//
// A pattern is a sequence of elements (skip-till-next-match). Element kinds:
//   Single — exactly one event matching the predicate,
//   Plus   — Kleene+, one or more matching events (advance-first semantics,
//            DESIGN.md §5),
//   Set    — an unordered conjunction of m member predicates, each matched by
//            a distinct event in any order (query Q3's SET(X1 … Xn)).
// Any element may carry a negation guard: while the element is the current
// one, a guard-matching event abandons the partial match — this is the
// negation-triggered consumption-group abandonment of §3.1.
#pragma once

#include <string>
#include <vector>

#include "query/predicate.hpp"

namespace spectre::query {

enum class ElementKind { Single, Plus, Set };

struct SetMember {
    std::string name;  // binding name, e.g. "X1"
    Expr pred;
};

struct Element {
    std::string name;  // binding name, e.g. "A", "RE1"
    ElementKind kind = ElementKind::Single;
    Expr pred;                      // Single / Plus
    std::vector<SetMember> members; // Set
    Expr guard;                     // optional negation guard (may be null)

    // Sticky elements keep their binding across matches within a window:
    // when a match completes, a successor match starts with the sticky
    // prefix still bound (unless one of its events was consumed). This is
    // the Snoop/Amit-style per-element "first" selection — QE's "the first
    // A in a window is correlated with every B" (§2.1, Fig. 1). Sticky
    // elements must form a prefix of the pattern and must be Single.
    bool sticky = false;
};

struct Pattern {
    std::vector<Element> elements;

    // Minimum number of events a complete match needs; this is the initial δ
    // of the Markov completion model (§3.2.1: "if a pattern instance consists
    // of at least 3 events ... the state-space has elements 3,2,1,0").
    int min_length() const;

    // Index of the element with binding name `name`, or -1.
    int element_index(const std::string& name) const;

    // Binding slots: every element and every SET member gets a dense slot in
    // the order they appear. BoundAttr expressions and the detector's bound-
    // event array use these slots. An element's own slot holds the first
    // event matched for it (for SET: the first matched member).
    int binding_slot(const std::string& name) const;  // -1 if unknown
    int binding_count() const;
    // Slot of element `elem` itself / of member m of element `elem`.
    int element_slot(std::size_t elem) const;
    int member_slot(std::size_t elem, std::size_t member) const;

    // Throws std::invalid_argument on structural errors (empty pattern,
    // duplicate binding names, elements without predicates/members).
    void validate() const;
};

}  // namespace spectre::query
