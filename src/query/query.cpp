#include "query/query.hpp"

#include <cctype>
#include <stdexcept>

#include "util/assert.hpp"

namespace spectre::query {

void Query::validate() const {
    SPECTRE_REQUIRE(schema != nullptr, "query needs a schema");
    pattern.validate();
    window.validate();
    SPECTRE_REQUIRE(max_matches_per_window >= 0, "max_matches_per_window must be >= 0");
    if (selection == SelectionPolicy::First)
        SPECTRE_REQUIRE(max_matches_per_window == 1,
                        "selection FIRST implies exactly one match per window");
    if (consumption.kind == ConsumptionPolicy::Kind::Subset) {
        for (const auto& name : consumption.elements) {
            bool found = pattern.element_index(name) >= 0;
            if (!found) {
                for (const auto& el : pattern.elements)
                    for (const auto& m : el.members)
                        if (m.name == name) found = true;
            }
            SPECTRE_REQUIRE(found, "consumption policy names unknown element: " + name);
        }
    }
    for (const auto& p : payload)
        SPECTRE_REQUIRE(p.expr != nullptr, "payload definition needs an expression: " + p.name);
    if (partition.kind == PartitionBy::Kind::Attr)
        SPECTRE_REQUIRE(partition.slot < schema->attr_count(),
                        "partition key attribute slot is not in the schema");
}

PartitionBy resolve_partition_key(const std::string& name, const event::Schema& schema) {
    std::string up = name;
    for (char& c : up) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (up == "SUBJECT") return PartitionBy::subject();
    const auto slot = schema.lookup_attr(name);
    if (slot >= event::kMaxAttrs || slot >= schema.attr_count())
        throw std::invalid_argument("unknown partition key '" + name +
                                    "' (expected SUBJECT or a schema attribute)");
    return PartitionBy::attr(slot);
}

QueryBuilder::QueryBuilder(std::shared_ptr<event::Schema> schema) {
    SPECTRE_REQUIRE(schema != nullptr, "QueryBuilder needs a schema");
    q_.schema = std::move(schema);
}

QueryBuilder& QueryBuilder::single(std::string name, Expr pred) {
    Element e;
    e.name = std::move(name);
    e.kind = ElementKind::Single;
    e.pred = std::move(pred);
    q_.pattern.elements.push_back(std::move(e));
    return *this;
}

QueryBuilder& QueryBuilder::plus(std::string name, Expr pred) {
    Element e;
    e.name = std::move(name);
    e.kind = ElementKind::Plus;
    e.pred = std::move(pred);
    q_.pattern.elements.push_back(std::move(e));
    return *this;
}

QueryBuilder& QueryBuilder::set(std::string name, std::vector<SetMember> members) {
    Element e;
    e.name = std::move(name);
    e.kind = ElementKind::Set;
    e.members = std::move(members);
    q_.pattern.elements.push_back(std::move(e));
    return *this;
}

QueryBuilder& QueryBuilder::guard(Expr guard) {
    SPECTRE_REQUIRE(!q_.pattern.elements.empty(), "guard() before any element");
    q_.pattern.elements.back().guard = std::move(guard);
    return *this;
}

QueryBuilder& QueryBuilder::sticky() {
    SPECTRE_REQUIRE(!q_.pattern.elements.empty(), "sticky() before any element");
    q_.pattern.elements.back().sticky = true;
    return *this;
}

QueryBuilder& QueryBuilder::window(WindowSpec spec) {
    q_.window = std::move(spec);
    window_set_ = true;
    return *this;
}

QueryBuilder& QueryBuilder::partition_by_subject() {
    q_.partition = PartitionBy::subject();
    return *this;
}

QueryBuilder& QueryBuilder::partition_by_attr(event::AttrSlot slot) {
    q_.partition = PartitionBy::attr(slot);
    return *this;
}

QueryBuilder& QueryBuilder::select(SelectionPolicy policy) {
    q_.selection = policy;
    if (policy == SelectionPolicy::Each && q_.max_matches_per_window == 1)
        q_.max_matches_per_window = 0;  // unbounded unless the user narrows it
    return *this;
}

QueryBuilder& QueryBuilder::consume_none() {
    q_.consumption = ConsumptionPolicy::none();
    return *this;
}

QueryBuilder& QueryBuilder::consume_all() {
    q_.consumption = ConsumptionPolicy::all();
    return *this;
}

QueryBuilder& QueryBuilder::consume(std::vector<std::string> elements) {
    q_.consumption = ConsumptionPolicy::subset(std::move(elements));
    return *this;
}

QueryBuilder& QueryBuilder::emit(std::string name, Expr expr) {
    q_.payload.push_back(PayloadDef{std::move(name), std::move(expr)});
    return *this;
}

QueryBuilder& QueryBuilder::max_matches(int n) {
    q_.max_matches_per_window = n;
    return *this;
}

Query QueryBuilder::build() {
    SPECTRE_REQUIRE(window_set_, "query needs a window specification");
    q_.validate();
    return q_;
}

}  // namespace spectre::query
