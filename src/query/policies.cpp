#include "query/policies.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace spectre::query {

ConsumptionPolicy ConsumptionPolicy::none() { return {}; }

ConsumptionPolicy ConsumptionPolicy::all() {
    ConsumptionPolicy p;
    p.kind = Kind::All;
    return p;
}

ConsumptionPolicy ConsumptionPolicy::subset(std::vector<std::string> elements) {
    SPECTRE_REQUIRE(!elements.empty(), "subset consumption policy needs element names");
    ConsumptionPolicy p;
    p.kind = Kind::Subset;
    p.elements = std::move(elements);
    return p;
}

std::string to_string(SelectionPolicy p) {
    return p == SelectionPolicy::First ? "FIRST" : "EACH";
}

std::string to_string(const ConsumptionPolicy& p) {
    switch (p.kind) {
        case ConsumptionPolicy::Kind::None: return "CONSUME NONE";
        case ConsumptionPolicy::Kind::All: return "CONSUME ALL";
        case ConsumptionPolicy::Kind::Subset: {
            std::ostringstream os;
            os << "CONSUME (";
            for (std::size_t i = 0; i < p.elements.size(); ++i) {
                if (i) os << ' ';
                os << p.elements[i];
            }
            os << ')';
            return os.str();
        }
    }
    return "?";
}

}  // namespace spectre::query
