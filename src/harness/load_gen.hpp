// LoadGenClient: drives N concurrent sessions against a CepServer
// (DESIGN.md §8) — the test/bench counterpart of the paper's "client program
// that ... sends events to SPECTRE over a TCP connection" (paper §4.1),
// generalized to many clients with independent queries.
//
// Each session runs on its own thread: connect, HELLO (query text + k),
// stream DATA frames while opportunistically draining RESULT frames (so a
// fast server never blocks on a full client socket), BYE, then read until the
// server's BYE. The outcome records the RESULT stream in arrival order plus
// the observability hooks the integration tests assert on: how many results
// arrived before BYE was sent (streaming egress happens before end-of-stream)
// and the first-result latency (for the throughput bench).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event/event.hpp"
#include "net/session.hpp"

namespace spectre::harness {

struct LoadGenSession {
    std::string query;            // query::parse_query text, sent in HELLO
    std::uint32_t instances = 0;  // k operator instances; 0 = sequential engine
    std::vector<net::WireQuote> events;

    // After sending this many DATA frames, block until at least one RESULT
    // has arrived — proves results stream back before end-of-stream.
    // SIZE_MAX disables the wait.
    std::size_t wait_result_after = SIZE_MAX;

    // After sending this many DATA frames, send a STATS request (DESIGN.md
    // §12); the reply rides the ordinary egress stream, interleaved with
    // RESULT frames, and lands in outcome.stats_json. SIZE_MAX disables.
    std::size_t stats_after = SIZE_MAX;

    // After sending this many DATA frames, send garbage bytes instead of the
    // rest (protocol-corruption fault injection). SIZE_MAX disables.
    std::size_t corrupt_after = SIZE_MAX;

    // Close the connection abruptly after sending this many *bytes* of the
    // next DATA frame (death mid-frame fault injection). SIZE_MAX disables.
    std::size_t truncate_frame_at_event = SIZE_MAX;

    // Slow-consumer fault injection: while set and false, the client does
    // not read a single RESULT byte — the server's egress buffer for this
    // session must fill and park its engine task (DESIGN.md §9), never a
    // pool worker. Reading (and the final drain) begins once the gate flips
    // to true. nullptr disables.
    std::shared_ptr<std::atomic<bool>> read_gate = nullptr;

    // SO_RCVBUF for this client's socket; 0 keeps the kernel default. Paired
    // with ServerConfig::session_sndbuf by the backpressure tests so result
    // bytes stop flowing at a known small bound instead of vanishing into
    // auto-tuned loopback buffers.
    int rcvbuf = 0;

    // Sharded HELLO fields (DESIGN.md §10).
    std::uint32_t shards = 0;     // HELLO shard count; 0 leaves it to the query
    std::string partition_by;     // HELLO partition key; "" = from query text
};

struct LoadGenOutcome {
    std::vector<event::ComplexEvent> results;  // RESULT frames, arrival order
    std::vector<std::string> stats_json;       // STATS replies, arrival order
    std::size_t results_before_bye = 0;        // received before BYE was sent
    std::uint64_t server_reported_results = 0; // count in the server's BYE
    bool completed = false;                    // server BYE received
    std::string error;                         // ERROR frame / transport failure
    double first_result_seconds = -1.0;        // since first DATA; -1 = none
    double wall_seconds = 0.0;                 // connect → session end
    std::size_t events_sent = 0;
    // stats_after was requested but the STATS frame could not be sent (the
    // session died first, or fault injection cut the stream). Distinguishes
    // "no reply yet" from "never asked" — callers used to silently get an
    // empty stats_json when stats_after exceeded the events actually sent.
    bool stats_missed = false;
};

// Shared-ingest-plane clients (DESIGN.md §15, HELLO v2). A PublisherClient
// owns a named stream and carries only DATA; SubscriberClients attach queries
// to it. Construction performs the versioned handshake and blocks until the
// server's capability echo arrives (or the session fails — captured in
// error(), never thrown for protocol-level rejects), so a test that
// constructs its subscribers before the publisher sends data *knows* they
// were attached before any history chunk could be reclaimed.
class PublisherClient {
public:
    PublisherClient(const std::string& host, std::uint16_t port,
                    std::string stream);
    ~PublisherClient();
    PublisherClient(PublisherClient&&) noexcept;
    PublisherClient& operator=(PublisherClient&&) noexcept;

    bool ok() const;                  // handshake echo received, no error
    const std::string& error() const;
    const net::Hello2Frame& capabilities() const;  // valid when ok()

    // Batched DATA frames; flushes at the end of the call.
    void publish(const std::vector<net::WireQuote>& events);
    // End the stream: BYE, then block for the server's acknowledging BYE.
    // Subscribers keep running — the stream's end-of-stream is what lets
    // their engines drain to completion. False = session failed (see error()).
    bool finish();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

class SubscriberClient {
public:
    struct Spec {
        std::string stream;           // published stream to attach to
        std::string query;            // query::parse_query text
        std::uint32_t instances = 0;  // k; 0 = sequential engine
        // Slow-consumer gate, same contract as LoadGenSession::read_gate.
        std::shared_ptr<std::atomic<bool>> read_gate = nullptr;
        int rcvbuf = 0;
    };

    SubscriberClient(const std::string& host, std::uint16_t port, Spec spec);
    ~SubscriberClient();
    SubscriberClient(SubscriberClient&&) noexcept;
    SubscriberClient& operator=(SubscriberClient&&) noexcept;

    bool ok() const;                  // handshake echo received, no error
    const std::string& error() const;
    const net::Hello2Frame& capabilities() const;  // valid when ok()

    // Blocks until the server ends the session — BYE once the stream closed
    // and the query drained, or ERROR — and returns the RESULT stream in
    // arrival order. A failed handshake returns its outcome immediately.
    LoadGenOutcome run();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

class LoadGenClient {
public:
    LoadGenClient(std::string host, std::uint16_t port);

    // Drives all sessions concurrently, one thread each; outcome[i]
    // corresponds to specs[i]. Never throws for per-session failures — they
    // land in outcome.error.
    std::vector<LoadGenOutcome> run(const std::vector<LoadGenSession>& specs) const;

    // Convenience for single-session flows.
    LoadGenOutcome run_one(const LoadGenSession& spec) const;

private:
    std::string host_;
    std::uint16_t port_;
};

}  // namespace spectre::harness
