#include "harness/load_gen.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>

#include "net/tcp.hpp"

namespace spectre::harness {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One session's client-side driver state. The transport is net::TcpClient —
// the same hardened connect/send path the single-connection pipeline uses.
struct Driver {
    std::optional<net::TcpClient> conn;
    net::FrameReader reader;
    LoadGenOutcome out;
    Clock::time_point first_data{};
    bool terminal = false;  // server BYE / ERROR / EOF seen

    int fd() const { return conn->fd(); }

    void connect(const std::string& host, std::uint16_t port, int rcvbuf) {
        conn.emplace(host, port, rcvbuf);
    }

    void send_frame(const net::SessionFrame& f) {
        flush_batch();  // keep the byte stream in frame order
        std::vector<std::uint8_t> bytes;
        net::encode_frame(f, bytes);
        conn->send_raw(bytes.data(), bytes.size());
    }

    // Batched DATA path (ungated sessions): encode_frame appends, so many
    // frames accumulate into one send. The wire bytes are identical to the
    // per-frame path — TCP carries no frame boundaries — but the client stops
    // being one syscall per event, which on a shared core starves the server.
    // Every ordering-sensitive point (control frames, fault injection,
    // blocking waits) flushes first.
    static constexpr std::size_t kBatchBytes = 32 * 1024;
    std::vector<std::uint8_t> batch;

    void send_frame_batched(const net::SessionFrame& f) {
        net::encode_frame(f, batch);
        if (batch.size() >= kBatchBytes) flush_batch();
    }

    void flush_batch() {
        if (batch.empty()) return;
        conn->send_raw(batch.data(), batch.size());
        batch.clear();
    }

    // Send for a read-gated (slow-consumer) session. A blocking send could
    // distributed-deadlock with the server's ingest backpressure: the server
    // parks the session on egress credit, stops pulling ingest, pauses
    // reading the socket — and a client wedged in send_raw would never reach
    // the gate-checked read loop. Send non-blockingly instead and, when the
    // socket fills, drain results once the gate allows (sleep until then).
    void send_frame_gated(const std::atomic<bool>& gate, const net::SessionFrame& f) {
        std::vector<std::uint8_t> bytes;
        net::encode_frame(f, bytes);
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            const ssize_t w = ::send(fd(), bytes.data() + sent, bytes.size() - sent,
                                     MSG_NOSIGNAL | MSG_DONTWAIT);
            if (w > 0) {
                sent += static_cast<std::size_t>(w);
                continue;
            }
            if (w < 0 && errno == EINTR) continue;
            if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                if (gate.load(std::memory_order_acquire))
                    drain_nonblocking();
                else
                    std::this_thread::sleep_for(std::chrono::milliseconds(1));
                continue;
            }
            throw std::runtime_error(std::string("send: ") + std::strerror(errno));
        }
    }

    // HELLO v2 capability echo (§15); arrives before any RESULT byte.
    std::optional<net::Hello2Frame> hello2;

    void handle(net::SessionFrame&& f) {
        if (auto* echo = std::get_if<net::Hello2Frame>(&f)) {
            hello2 = std::move(*echo);
        } else if (auto* result = std::get_if<net::ResultFrame>(&f)) {
            if (out.results.empty()) out.first_result_seconds = seconds_since(first_data);
            out.results.push_back(net::from_result_frame(*result));
        } else if (const auto* bye = std::get_if<net::ByeFrame>(&f)) {
            out.completed = true;
            out.server_reported_results = bye->results;
            terminal = true;
        } else if (auto* stats = std::get_if<net::StatsFrame>(&f)) {
            out.stats_json.push_back(std::move(stats->json));
        } else if (auto* error = std::get_if<net::ErrorFrame>(&f)) {
            out.error = std::move(error->message);
            terminal = true;
        } else {
            out.error = "protocol error: unexpected frame from server";
            terminal = true;
        }
    }

    void feed_and_poll(const std::uint8_t* data, std::size_t n) {
        reader.feed(data, n);
        while (!terminal) {
            auto f = reader.poll();
            if (!f) break;
            handle(std::move(*f));
        }
    }

    // Drains whatever the server has sent without blocking, so a fast server
    // never stalls on a full client-side socket buffer mid-stream.
    void drain_nonblocking() {
        std::uint8_t chunk[16384];
        while (!terminal) {
            const ssize_t n = ::recv(fd(), chunk, sizeof(chunk), MSG_DONTWAIT);
            if (n > 0) {
                feed_and_poll(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                if (out.error.empty()) out.error = "server closed the connection";
                terminal = true;
                return;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (out.error.empty())
                out.error = std::string("recv: ") + std::strerror(errno);
            terminal = true;
            return;
        }
    }

    // One blocking read; advances the frame reader.
    void read_blocking() {
        std::uint8_t chunk[16384];
        const ssize_t n = net::read_some(fd(), chunk, sizeof(chunk));
        if (n > 0) {
            feed_and_poll(chunk, static_cast<std::size_t>(n));
            return;
        }
        if (n == 0) {
            if (!out.completed && out.error.empty())
                out.error = "server closed the connection";
            terminal = true;
        }
    }
};

LoadGenOutcome drive(const std::string& host, std::uint16_t port,
                     const LoadGenSession& spec) {
    Driver d;
    const auto t0 = Clock::now();
    try {
        // SO_RCVBUF must be set before connect to bound the TCP window.
        d.connect(host, port, spec.rcvbuf);
        d.send_frame(net::SessionFrame{
            net::HelloFrame{spec.query, spec.instances, spec.shards, spec.partition_by}});
        d.first_data = Clock::now();
        bool corrupted = false;
        bool stats_sent = spec.stats_after == SIZE_MAX;  // "never asked" latch
        for (std::size_t i = 0; i < spec.events.size() && !d.terminal; ++i) {
            if (i == spec.corrupt_after) {
                // Fault injection: an invalid frame tag followed by noise.
                d.flush_batch();
                const std::uint8_t garbage[16] = {0xff, 0xde, 0xad, 0xbe, 0xef};
                d.conn->send_raw(garbage, sizeof(garbage));
                corrupted = true;
                break;
            }
            if (i == spec.truncate_frame_at_event) {
                // Fault injection: die mid-frame — send a partial DATA frame
                // then hard-close the socket.
                d.flush_batch();
                std::vector<std::uint8_t> bytes;
                net::encode_frame(net::SessionFrame{spec.events[i]}, bytes);
                d.conn->send_raw(bytes.data(), bytes.size() / 2);
                d.conn->close();
                d.out.stats_missed = !stats_sent;
                d.out.wall_seconds = seconds_since(t0);
                return std::move(d.out);
            }
            if (spec.read_gate)
                d.send_frame_gated(*spec.read_gate, net::SessionFrame{spec.events[i]});
            else
                d.send_frame_batched(net::SessionFrame{spec.events[i]});
            ++d.out.events_sent;
            if (!stats_sent && d.out.events_sent >= spec.stats_after) {
                // Mid-stream STATS request: the reply interleaves with RESULTs.
                // Latched (>=, not ==): a stream shorter than stats_after must
                // not silently skip the request.
                stats_sent = true;
                if (spec.read_gate)
                    d.send_frame_gated(*spec.read_gate,
                                       net::SessionFrame{net::StatsFrame{}});
                else
                    d.send_frame(net::SessionFrame{net::StatsFrame{}});
            }
            if (!spec.read_gate || spec.read_gate->load(std::memory_order_acquire))
                d.drain_nonblocking();
            if (i == spec.wait_result_after) {
                d.flush_batch();  // the result may hinge on a buffered event
                while (!d.terminal && d.out.results.empty()) d.read_blocking();
            }
        }
        if (!d.terminal && !corrupted) {
            if (!stats_sent) {
                // The stream ended before stats_after events: honor the
                // request anyway, right before BYE, so the caller still gets
                // a reply instead of a silently empty stats_json.
                stats_sent = true;
                if (spec.read_gate)
                    d.send_frame_gated(*spec.read_gate,
                                       net::SessionFrame{net::StatsFrame{}});
                else
                    d.send_frame(net::SessionFrame{net::StatsFrame{}});
            }
            if (spec.read_gate)
                d.send_frame_gated(*spec.read_gate, net::SessionFrame{net::ByeFrame{}});
            else
                d.send_frame(net::SessionFrame{net::ByeFrame{}});
        }
        d.out.stats_missed = !stats_sent;
        d.out.results_before_bye = d.out.results.size();
        while (!d.terminal) {
            if (spec.read_gate && !spec.read_gate->load(std::memory_order_acquire)) {
                // Slow consumer: hold the connection open without reading a
                // byte until the gate opens.
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                continue;
            }
            d.read_blocking();
        }
    } catch (const std::exception& e) {
        if (d.out.error.empty()) d.out.error = e.what();
    }
    d.out.wall_seconds = seconds_since(t0);
    return std::move(d.out);
}

// Shared handshake for the §15 clients: connect, send the v2 HELLO, block
// until the capability echo (the server buffers it before any RESULT byte)
// or a terminal frame/transport failure. Rejects land in out.error.
bool handshake_v2(Driver& d, const std::string& host, std::uint16_t port,
                  int rcvbuf, net::Hello2Frame&& hello) {
    try {
        d.connect(host, port, rcvbuf);
        d.send_frame(net::SessionFrame{std::move(hello)});
        while (!d.terminal && !d.hello2) d.read_blocking();
    } catch (const std::exception& e) {
        if (d.out.error.empty()) d.out.error = e.what();
        d.terminal = true;
    }
    return d.hello2.has_value() && d.out.error.empty();
}

}  // namespace

// --- PublisherClient (§15) --------------------------------------------------

struct PublisherClient::Impl {
    Driver d;
    Clock::time_point t0 = Clock::now();
    bool ok = false;
};

PublisherClient::PublisherClient(const std::string& host, std::uint16_t port,
                                 std::string stream)
    : impl_(std::make_unique<Impl>()) {
    net::Hello2Frame hello;
    hello.set("role", "publish");
    hello.set("stream", std::move(stream));
    impl_->ok = handshake_v2(impl_->d, host, port, 0, std::move(hello));
    impl_->d.first_data = Clock::now();
}

PublisherClient::~PublisherClient() = default;
PublisherClient::PublisherClient(PublisherClient&&) noexcept = default;
PublisherClient& PublisherClient::operator=(PublisherClient&&) noexcept = default;

bool PublisherClient::ok() const { return impl_->ok; }
const std::string& PublisherClient::error() const { return impl_->d.out.error; }
const net::Hello2Frame& PublisherClient::capabilities() const {
    return *impl_->d.hello2;
}

void PublisherClient::publish(const std::vector<net::WireQuote>& events) {
    if (!impl_->ok || impl_->d.terminal) return;
    try {
        for (const auto& q : events) {
            if (impl_->d.terminal) break;
            impl_->d.send_frame_batched(net::SessionFrame{q});
            ++impl_->d.out.events_sent;
        }
        impl_->d.flush_batch();
        // The only egress a live publisher has is an ERROR — catch it early
        // rather than on finish().
        impl_->d.drain_nonblocking();
    } catch (const std::exception& e) {
        if (impl_->d.out.error.empty()) impl_->d.out.error = e.what();
        impl_->d.terminal = true;
    }
}

bool PublisherClient::finish() {
    Driver& d = impl_->d;
    if (impl_->ok && !d.terminal) {
        try {
            d.send_frame(net::SessionFrame{net::ByeFrame{}});
            while (!d.terminal) d.read_blocking();
        } catch (const std::exception& e) {
            if (d.out.error.empty()) d.out.error = e.what();
            d.terminal = true;
        }
    }
    d.out.wall_seconds = seconds_since(impl_->t0);
    return d.out.completed && d.out.error.empty();
}

// --- SubscriberClient (§15) -------------------------------------------------

struct SubscriberClient::Impl {
    Driver d;
    Clock::time_point t0 = Clock::now();
    std::shared_ptr<std::atomic<bool>> read_gate;
    bool ok = false;
};

SubscriberClient::SubscriberClient(const std::string& host, std::uint16_t port,
                                   Spec spec)
    : impl_(std::make_unique<Impl>()) {
    impl_->read_gate = std::move(spec.read_gate);
    net::Hello2Frame hello;
    hello.set("role", "subscribe");
    hello.set("stream", std::move(spec.stream));
    hello.set("query", std::move(spec.query));
    if (spec.instances > 0) hello.set("instances", std::to_string(spec.instances));
    impl_->ok = handshake_v2(impl_->d, host, port, spec.rcvbuf, std::move(hello));
    // Results start flowing as soon as the publisher's data does; measure
    // first-result latency from attach.
    impl_->d.first_data = Clock::now();
}

SubscriberClient::~SubscriberClient() = default;
SubscriberClient::SubscriberClient(SubscriberClient&&) noexcept = default;
SubscriberClient& SubscriberClient::operator=(SubscriberClient&&) noexcept = default;

bool SubscriberClient::ok() const { return impl_->ok; }
const std::string& SubscriberClient::error() const { return impl_->d.out.error; }
const net::Hello2Frame& SubscriberClient::capabilities() const {
    return *impl_->d.hello2;
}

LoadGenOutcome SubscriberClient::run() {
    Driver& d = impl_->d;
    while (!d.terminal) {
        if (impl_->read_gate &&
            !impl_->read_gate->load(std::memory_order_acquire)) {
            // Slow consumer: hold the connection open without reading a byte
            // until the gate opens (§9 backpressure must stay per-session).
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
        }
        d.read_blocking();
    }
    d.out.results_before_bye = d.out.results.size();
    d.out.wall_seconds = seconds_since(impl_->t0);
    return std::move(d.out);
}

LoadGenClient::LoadGenClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

std::vector<LoadGenOutcome> LoadGenClient::run(
    const std::vector<LoadGenSession>& specs) const {
    std::vector<LoadGenOutcome> outcomes(specs.size());
    std::vector<std::thread> threads;
    threads.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        threads.emplace_back([this, &specs, &outcomes, i] {
            outcomes[i] = drive(host_, port_, specs[i]);
        });
    for (auto& t : threads) t.join();
    return outcomes;
}

LoadGenOutcome LoadGenClient::run_one(const LoadGenSession& spec) const {
    return drive(host_, port_, spec);
}

}  // namespace spectre::harness
