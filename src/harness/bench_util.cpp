#include "harness/bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "sequential/seq_engine.hpp"
#include "util/assert.hpp"

namespace spectre::harness {

Calibration calibrate(const detect::CompiledQuery& cq, const event::EventStore& store,
                      int reps) {
    SPECTRE_REQUIRE(!store.empty(), "calibration needs events");
    sequential::SequentialEngine engine(&cq);
    std::vector<double> ns_samples;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = engine.run(store);
        const auto t1 = std::chrono::steady_clock::now();
        const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
        const auto steps = result.stats.events_processed + result.stats.events_suppressed;
        if (steps > 0) ns_samples.push_back(ns / static_cast<double>(steps));
    }
    Calibration cal;
    if (!ns_samples.empty()) cal.ns_per_event = util::percentile(ns_samples, 50);
    // A maintenance+scheduling cycle costs on the order of a few event steps
    // (it walks a handful of tree vertices and drains a queue batch).
    cal.splitter_cycle_ns = 4.0 * cal.ns_per_event;
    return cal;
}

core::SimConfig paper_machine_sim(const Calibration& cal, int k) {
    core::SimConfig cfg;
    cfg.splitter.instances = k;
    cfg.ns_per_event = cal.ns_per_event;
    cfg.splitter_cycle_ns = cal.splitter_cycle_ns;
    cfg.idle_poll_ns = cal.splitter_cycle_ns;
    cfg.physical_cores = 20;   // 2x10-core Xeon E5-2687W v3
    cfg.ht_efficiency = 0.25;  // hyper-threading gain beyond 20 threads
    cfg.model_contention = true;
    return cfg;
}

double run_sim_throughput(const event::EventStore& store, const detect::CompiledQuery& cq,
                          core::SimConfig cfg,
                          std::function<std::unique_ptr<model::CompletionModel>()> model) {
    core::SimRuntime sim(&store, &cq, cfg, model());
    return sim.run().throughput_eps;
}

std::unique_ptr<model::CompletionModel> paper_markov(int max_delta) {
    model::MarkovParams params;  // α = 0.7, ℓ = 10 (§4.2)
    return std::make_unique<model::MarkovModel>(max_delta, params);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::print() const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    const auto print_row = [&](const std::vector<std::string>& cells) {
        std::printf("  ");
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]), cells[c].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(width[c], '-') + "  ";
    std::printf("  %s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
}

std::string fmt_eps(double eps) {
    char buf[64];
    if (eps >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", eps / 1e6);
    else if (eps >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fk", eps / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", eps);
    return buf;
}

std::string fmt_double(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string fmt_candle(const std::vector<double>& samples) {
    const auto c = util::candlestick(samples);
    std::ostringstream os;
    os << fmt_eps(c.min) << " [" << fmt_eps(c.p25) << ' ' << fmt_eps(c.median) << ' '
       << fmt_eps(c.p75) << "] " << fmt_eps(c.max);
    return os.str();
}

void print_header(const std::string& experiment_id, const std::string& description) {
    std::printf("\n=== %s — %s ===\n", experiment_id.c_str(), description.c_str());
}

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

JsonLine::JsonLine(const std::string& experiment_id) {
    raw("experiment", '"' + json_escape(experiment_id) + '"');
}

void JsonLine::raw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) body_ += ',';
    body_ += '"' + json_escape(key) + "\":" + rendered;
}

JsonLine& JsonLine::field(const std::string& key, const std::string& value) {
    raw(key, '"' + json_escape(value) + '"');
    return *this;
}

JsonLine& JsonLine::field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    raw(key, buf);
    return *this;
}

JsonLine& JsonLine::field(const std::string& key, std::uint64_t value) {
    raw(key, std::to_string(value));
    return *this;
}

JsonLine& JsonLine::field(const std::string& key, int value) {
    raw(key, std::to_string(value));
    return *this;
}

std::string JsonLine::str() const { return '{' + body_ + '}'; }

void JsonLine::print() const { std::printf("%s\n", str().c_str()); }

}  // namespace spectre::harness
