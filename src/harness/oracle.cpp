#include "harness/oracle.hpp"

#include <memory>
#include <utility>

#include "data/stock.hpp"
#include "detect/compiled_query.hpp"
#include "query/parser.hpp"
#include "sequential/seq_engine.hpp"
#include "shard/sharded_engine.hpp"

namespace spectre::harness {

std::vector<event::ComplexEvent> sequential_oracle(
    const std::string& query_text, const std::vector<net::WireQuote>& wire) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    auto query = query::parse_query(query_text, vocab.schema);
    const auto cq = detect::CompiledQuery::compile(std::move(query));
    event::EventStore store;
    for (const auto& q : wire) store.append(net::from_wire(q, vocab));
    return sequential::SequentialEngine(&cq).run(store).complex_events;
}

std::vector<event::ComplexEvent> partitioned_oracle(const std::string& query_text,
                                                    const std::vector<net::WireQuote>& wire,
                                                    const std::string& partition_by) {
    const auto vocab = data::StockVocab::create(std::make_shared<event::Schema>());
    auto query = query::parse_query(query_text, vocab.schema);
    if (!partition_by.empty())
        query.partition = query::resolve_partition_key(partition_by, *vocab.schema);
    const auto cq = detect::CompiledQuery::compile(std::move(query));
    std::vector<event::Event> events;
    events.reserve(wire.size());
    for (const auto& q : wire) events.push_back(net::from_wire(q, vocab));
    return shard::reference_partitioned_run(cq, events);
}

bool results_identical(const std::vector<event::ComplexEvent>& a,
                       const std::vector<event::ComplexEvent>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].window_id != b[i].window_id || a[i].constituents != b[i].constituents ||
            a[i].payload != b[i].payload)
            return false;
    return true;
}

}  // namespace spectre::harness
