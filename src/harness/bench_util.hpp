// Benchmark harness shared by all `bench/` binaries.
//
// Responsibilities:
//   * cost calibration — measure this machine's per-event detector cost and
//     the splitter's per-cycle cost, so the simulated multicore executor
//     (DESIGN.md substitution 1) runs with realistic constants;
//   * repetition — the paper repeats every experiment 10× and plots
//     candlesticks; we repeat across dataset seeds (the simulator itself is
//     deterministic) and report the same five-number summary;
//   * table printing — every bench prints rows next to the paper's reference
//     series so EXPERIMENTS.md can record paper-vs-measured directly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "detect/compiled_query.hpp"
#include "event/stream.hpp"
#include "model/markov_model.hpp"
#include "spectre/sim_runtime.hpp"
#include "util/stats.hpp"

namespace spectre::harness {

struct Calibration {
    double ns_per_event = 1000.0;     // detector step cost
    double splitter_cycle_ns = 2000.0;  // maintenance + scheduling cycle cost
};

// Measures the sequential per-event processing cost of `cq` over `store`
// (median of `reps` timed passes) and derives the splitter cycle cost.
Calibration calibrate(const detect::CompiledQuery& cq, const event::EventStore& store,
                      int reps = 3);

// Builds a SimConfig mirroring the paper's machine (2x10 cores, HT) with the
// calibrated costs and `k` operator instances.
core::SimConfig paper_machine_sim(const Calibration& cal, int k);

// One simulated run; returns throughput in events/second (virtual time).
double run_sim_throughput(const event::EventStore& store, const detect::CompiledQuery& cq,
                          core::SimConfig cfg,
                          std::function<std::unique_ptr<model::CompletionModel>()> model);

// Markov model with the paper's parameters (α=0.7, ℓ=10).
std::unique_ptr<model::CompletionModel> paper_markov(int max_delta);

// --- output ---------------------------------------------------------------

// Fixed-width table printer.
class Table {
public:
    explicit Table(std::vector<std::string> headers);
    void row(const std::vector<std::string>& cells);
    void print() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

std::string fmt_eps(double events_per_second);  // "154.0k", "1.2M"
std::string fmt_double(double v, int precision = 2);

// Candlestick over repetition samples, rendered the way the paper plots it.
std::string fmt_candle(const std::vector<double>& samples);

void print_header(const std::string& experiment_id, const std::string& description);

// Machine-readable results: one JSON object per result row ("JSON Lines"),
// printed alongside the human tables so scripts can scrape bench output
// without parsing column widths. Every line carries the experiment id:
//   {"experiment":"E-stream","mode":"ingest_while_detect","k":4,"eps":12345.6}
class JsonLine {
public:
    explicit JsonLine(const std::string& experiment_id);
    JsonLine& field(const std::string& key, const std::string& value);
    JsonLine& field(const std::string& key, double value);
    JsonLine& field(const std::string& key, std::uint64_t value);
    JsonLine& field(const std::string& key, int value);
    std::string str() const;  // the complete {...} object
    void print() const;       // str() + newline to stdout

private:
    void raw(const std::string& key, const std::string& rendered);
    std::string body_;
};

}  // namespace spectre::harness
