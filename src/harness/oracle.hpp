// The sequential oracle for server parity checks (DESIGN.md §8/§9): the one
// definition of "what a session's RESULT stream must equal", shared by the
// differential test suites and the bench acceptance gate so they can never
// diverge. Reproduces exactly what the server does per session — fresh
// schema + vocab, parse the query text, decode the DATA frames in arrival
// order — then runs the sequential reference engine over the result.
#pragma once

#include <string>
#include <vector>

#include "event/event.hpp"
#include "net/session.hpp"

namespace spectre::harness {

// Sequential ground truth over the wire-encoded input a session sent.
std::vector<event::ComplexEvent> sequential_oracle(const std::string& query_text,
                                                   const std::vector<net::WireQuote>& wire);

// Ground truth for a *sharded* session (DESIGN.md §10): same session setup,
// partition key optionally overridden as HELLO does, then the unsharded
// per-key sequential reference — what a sharded session's merged RESULT
// stream must equal for every shard count.
std::vector<event::ComplexEvent> partitioned_oracle(const std::string& query_text,
                                                    const std::vector<net::WireQuote>& wire,
                                                    const std::string& partition_by = "");

// Byte-identity in the §8 sense: window ids, constituent seqs, payloads, and
// order all equal.
bool results_identical(const std::vector<event::ComplexEvent>& a,
                       const std::vector<event::ComplexEvent>& b);

}  // namespace spectre::harness
