#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <bit>
#include <iterator>

#include "model/markov_model.hpp"
#include "util/assert.hpp"

namespace spectre::shard {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t key_bits(const event::Event& e, const query::PartitionBy& part) {
    if (part.kind == query::PartitionBy::Kind::Subject)
        return static_cast<std::uint64_t>(e.subject);
    // Attr keys group by exact bit pattern (query.hpp): distinct NaN payloads
    // or signed zeros are distinct keys, which keeps the grouping total.
    return std::bit_cast<std::uint64_t>(e.attr(part.slot));
}

}  // namespace

// One key's independent sub-stream and engine — the semantic unit of
// partitioned detection, and the unit of migration (§13): the whole object
// moves between shards, MappedStore and stepper/runtime state intact. Owned
// and driven by exactly one shard task at a time; `owner` names it.
struct ShardedEngine::KeyLane {
    std::uint32_t key = 0;
    ShardState* owner = nullptr;  // result sink targets the current owner
    event::MappedStore store;
    std::unique_ptr<sequential::SeqStepper> stepper;  // instances == 0
    std::unique_ptr<core::SpectreRuntime> runtime;    // instances > 0
};

struct ShardedEngine::Pending {
    enum class Kind : std::uint8_t {
        Arrival,  // one routed event
        Migrate,  // hand lane `key` to shard `to` (consumes no g)
    };
    Kind kind = Kind::Arrival;
    event::Seq g = 0;
    std::uint32_t key = 0;
    std::uint32_t to = 0;     // Migrate only: destination slot
    std::uint32_t epoch = 0;  // routing epoch that enqueued this entry
    event::Event e;
};

struct ShardedEngine::TaggedResult {
    MergeTag tag;
    event::ComplexEvent ce;
};

struct ShardedEngine::ShardState {
    // `mutex` guards the feeder↔task queue, the merger-visible progress
    // fields, the task→merger result buffer, and the migration mailbox.
    mutable std::mutex mutex;
    std::deque<Pending> queue;
    // Authoritative end-of-input gate for THIS shard's queue: set under the
    // lock by close_input(), checked under the lock by ingest() — so no
    // event can slip in behind the close, and the EOS drain can begin the
    // moment the queue is observed empty with this set. (The engine-level
    // atomic is only the cheap unfenced pre-check.)
    bool input_closed = false;
    MergeTag inflight = kInfTag;  // tag being processed right now
    bool eos_started = false;
    bool eos_done = false;
    std::uint32_t eos_key = 0;  // lower bound on future EOS tags
    std::deque<TaggedResult> results;
    // Migration handoff (§13), both mutex-guarded: keys whose lane is in
    // transit toward this shard (their arrivals must not be processed yet),
    // and the mailbox the source task deposits the lane into.
    std::unordered_set<std::uint32_t> awaited;
    std::vector<std::unique_ptr<KeyLane>> incoming;

    // Task-private (only the owning shard task touches these; the lane sinks
    // run on the task thread during a drain).
    std::map<std::uint32_t, std::unique_ptr<KeyLane>> lanes;  // by key index
    std::uint32_t eos_next_key = 0;
    MergeTag current_tag;
};

ShardedEngine::ShardedEngine(const detect::CompiledQuery* cq, ShardedConfig cfg,
                             event::ResultSink sink)
    : cq_(cq),
      cfg_(cfg),
      slot_count_(std::max(cfg.shards, cfg.max_shards)),
      sink_(std::move(sink)),
      active_shards_(cfg.shards),
      task_span_(cfg.shards) {
    SPECTRE_REQUIRE(cq_ != nullptr, "ShardedEngine needs a compiled query");
    SPECTRE_REQUIRE(cq_->query().partition.active(),
                    "ShardedEngine needs a query with PARTITION BY");
    SPECTRE_REQUIRE(cfg_.shards >= 1, "ShardedEngine needs at least one shard");
    SPECTRE_REQUIRE(static_cast<bool>(sink_), "ShardedEngine needs a result sink");
    shards_.reserve(slot_count_);
    for (std::size_t s = 0; s < slot_count_; ++s)
        shards_.push_back(std::make_unique<ShardState>());
    shard_heat_.assign(slot_count_, 0);
    epochs_.push_back(EpochRecord{0, cfg_.shards});
}

ShardedEngine::~ShardedEngine() = default;

ShardedEngine::IngestInfo ShardedEngine::ingest(event::Event e) {
    const auto bits = key_bits(e, cq_->query().partition);
    const auto [it, fresh] =
        key_index_.try_emplace(bits, static_cast<std::uint32_t>(key_index_.size()));
    const std::uint32_t key = it->second;
    if (fresh) {
        const std::uint32_t active = active_shards_.load(std::memory_order_relaxed);
        key_route_.push_back(RouteEntry{
            static_cast<std::uint32_t>(splitmix64(bits) % active), epoch_});
        key_bits_.push_back(bits);
        key_heat_.push_back(0);
    }
    const std::uint32_t shard = key_route_[key].shard;
    event::Seq g;
    {
        const std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
        // A worker-side abort may close the input concurrently with the
        // feeder (server failure paths); the per-shard gate makes the race
        // benign — a trailing event is dropped, never enqueued behind an
        // EOS drain (which would break merge-tag ordering) and never fatal.
        // The `dropped` flag tells the caller nothing was enqueued, so it
        // must not notify the shard task or stamp an arrival.
        if (shards_[shard]->input_closed) {
            IngestInfo info{shard, queued_.load(std::memory_order_acquire)};
            info.dropped = true;
            return info;
        }
        g = next_g_++;
        shards_[shard]->queue.push_back(Pending{Pending::Kind::Arrival, g, key,
                                                0, key_route_[key].epoch,
                                                std::move(e)});
    }
    ++key_heat_[key];
    ++shard_heat_[shard];
    const std::size_t queued = queued_.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Publish after the push: a merger that reads frontier_ >= g+1 and finds
    // the shard's queue empty knows event g was already processed.
    frontier_.store(g + 1, std::memory_order_release);
    return IngestInfo{shard, queued};
}

void ShardedEngine::close_input() {
    // Engine-level flag first (the merger's bound logic and idle pre-checks
    // read it), then the authoritative per-shard gates: once a shard's gate
    // is set under its lock, no further ingest can enqueue there, so an EOS
    // result can never be followed by a smaller arrival tag.
    closed_.store(true, std::memory_order_release);
    for (const auto& shp : shards_) {
        const std::lock_guard<std::mutex> lock(shp->mutex);
        shp->input_closed = true;
    }
}

// --- elastic partitioning (feeder thread; DESIGN.md §13) --------------------

bool ShardedEngine::migrations_allowed() const {
    // One wave at a time: a reshard racing a lane still in transit could
    // strand it (the in-flight lane's destination decision predates the new
    // epoch). And never after close: the EOS drains are placement-final.
    return migrations_inflight_.load(std::memory_order_acquire) == 0 &&
           !input_closed();
}

bool ShardedEngine::arm_migration(std::uint32_t key, std::uint32_t to) {
    const std::uint32_t from = key_route_[key].shard;
    if (from == to) return false;
    // Destination first: the awaited entry must exist before the source task
    // can possibly deposit the lane, or the install could race ahead of it
    // and leave the key blocked forever.
    {
        const std::lock_guard<std::mutex> lock(shards_[to]->mutex);
        shards_[to]->awaited.insert(key);
    }
    migrations_inflight_.fetch_add(1, std::memory_order_acq_rel);
    bool armed = false;
    {
        const std::lock_guard<std::mutex> lock(shards_[from]->mutex);
        if (!shards_[from]->input_closed) {
            Pending marker;
            marker.kind = Pending::Kind::Migrate;
            // Markers consume no g (g values must match the reference run
            // event-for-event); next_g_ is a sound merge lower bound for a
            // FIFO position ahead of every future arrival.
            marker.g = next_g_;
            marker.key = key;
            marker.to = to;
            marker.epoch = epoch_;
            shards_[from]->queue.push_back(std::move(marker));
            armed = true;
        }
    }
    if (!armed) {
        // Input closed under us (worker-side abort racing the feeder): roll
        // back; the lane finishes where it is. Wake the destination — it may
        // already be parked waiting on the awaited entry at EOS.
        {
            const std::lock_guard<std::mutex> lock(shards_[to]->mutex);
            shards_[to]->awaited.erase(key);
        }
        migrations_inflight_.fetch_sub(1, std::memory_order_acq_rel);
        if (waker_) waker_(to);
        return false;
    }
    key_route_[key] = RouteEntry{to, epoch_};
    const std::uint64_t h = key_heat_[key];
    shard_heat_[from] -= std::min(shard_heat_[from], h);
    shard_heat_[to] += h;
    ++keys_moved_;
    if (waker_) waker_(from);  // the marker is work even if no arrival follows
    return true;
}

bool ShardedEngine::reshard(std::uint32_t new_shards) {
    if (new_shards == 0 || new_shards > shards()) return false;
    if (new_shards == active_shards_.load(std::memory_order_relaxed)) return false;
    if (!migrations_allowed()) return false;
    ++epoch_;
    // Span before routing: the merger loads frontier (acquire) before span,
    // so any event it can see routed under the new width also shows it the
    // grown span.
    if (new_shards > task_span_.load(std::memory_order_relaxed))
        task_span_.store(new_shards, std::memory_order_release);
    active_shards_.store(new_shards, std::memory_order_release);
    epochs_.push_back(EpochRecord{next_g_, new_shards});
    for (std::uint32_t k = 0; k < key_route_.size(); ++k) {
        const auto to =
            static_cast<std::uint32_t>(splitmix64(key_bits_[k]) % new_shards);
        if (to != key_route_[k].shard) arm_migration(k, to);
    }
    ++reshards_;
    return true;
}

bool ShardedEngine::steal_hottest(std::uint32_t from, std::uint32_t to) {
    const std::uint32_t span = task_span();
    if (from >= span || to >= span || from == to) return false;
    if (!migrations_allowed()) return false;
    // Only a key lighter than the load gap improves the max: moving one
    // hotter just re-pins `to`. An 80%-hot key is therefore never bounced;
    // its cold co-residents drain away until it holds the shard alone.
    const std::uint64_t gap = shard_heat_[from] > shard_heat_[to]
                                  ? shard_heat_[from] - shard_heat_[to]
                                  : 0;
    std::uint32_t best = kNoKey;
    std::uint64_t best_heat = 0;
    for (std::uint32_t k = 0; k < key_route_.size(); ++k) {
        if (key_route_[k].shard != from) continue;
        const std::uint64_t h = key_heat_[k];
        if (h >= gap) continue;
        if (best == kNoKey || h > best_heat) {
            best = k;
            best_heat = h;
        }
    }
    decay_heat();  // heat is a windowed signal: halve at every decision
    if (best == kNoKey) return false;
    ++epoch_;
    if (!arm_migration(best, to)) return false;
    epochs_.push_back(
        EpochRecord{next_g_, active_shards_.load(std::memory_order_relaxed)});
    ++steals_;
    return true;
}

bool ShardedEngine::migrate_key(std::uint32_t key, std::uint32_t to) {
    if (key >= key_route_.size() || to >= task_span()) return false;
    if (key_route_[key].shard == to) return false;
    if (!migrations_allowed()) return false;
    ++epoch_;
    if (!arm_migration(key, to)) return false;
    epochs_.push_back(
        EpochRecord{next_g_, active_shards_.load(std::memory_order_relaxed)});
    ++steals_;
    return true;
}

void ShardedEngine::decay_heat() {
    // Recompute shard sums from the halved key heats so per-shard residue
    // can never outlive the keys that produced it.
    std::fill(shard_heat_.begin(), shard_heat_.end(), 0);
    for (std::uint32_t k = 0; k < key_heat_.size(); ++k) {
        key_heat_[k] >>= 1;
        shard_heat_[key_route_[k].shard] += key_heat_[k];
    }
}

ShardedEngine::MigrationStats ShardedEngine::migration_stats() const noexcept {
    MigrationStats m;
    m.reshards = reshards_;
    m.steals = steals_;
    m.keys_moved = keys_moved_;
    m.epoch = epoch_;
    return m;
}

bool ShardedEngine::shard_parkable(std::uint32_t s) const {
    const ShardState& sh = *shards_[s];
    const std::lock_guard<std::mutex> lock(sh.mutex);
    if (!sh.incoming.empty()) return false;  // lanes ready to install
    if (!sh.queue.empty()) {
        // Only a head arrival blocked on a lane in transit may park; the
        // deposit wakes the task through the shard waker.
        const Pending& h = sh.queue.front();
        return h.kind == Pending::Kind::Arrival && sh.awaited.count(h.key) != 0;
    }
    if (!sh.input_closed) return true;   // idle: ingest/close will wake
    if (!sh.awaited.empty()) return true;  // handoff in flight: waker will wake
    return sh.eos_done;  // EOS work remains → keep running
}

std::uint32_t ShardedEngine::key_count() const {
    return static_cast<std::uint32_t>(key_route_.size());
}

// Lane maps are task-private (header contract: call from the owning shard
// task or once the engine finished), so these walk without the shard lock.
core::SchedStats ShardedEngine::shard_sched_stats(std::uint32_t s) const {
    core::SchedStats agg;
    for (const auto& [key, lane] : shards_[s]->lanes)
        if (lane->runtime) agg.merge(lane->runtime->sched_stats());
    return agg;
}

core::SplitterMetrics ShardedEngine::shard_splitter_metrics(std::uint32_t s) const {
    core::SplitterMetrics agg;
    for (const auto& [key, lane] : shards_[s]->lanes)
        if (lane->runtime) agg.merge(lane->runtime->splitter_metrics());
    return agg;
}

core::SchedStats ShardedEngine::sched_stats() const {
    core::SchedStats agg;
    for (std::uint32_t s = 0; s < shards_.size(); ++s)
        agg.merge(shard_sched_stats(s));
    return agg;
}

core::SplitterMetrics ShardedEngine::splitter_metrics() const {
    core::SplitterMetrics agg;
    for (std::uint32_t s = 0; s < shards_.size(); ++s)
        agg.merge(shard_splitter_metrics(s));
    return agg;
}

std::size_t ShardedEngine::shard_queue_depth(std::uint32_t s) const {
    const std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    return shards_[s]->queue.size();
}

std::unique_ptr<ShardedEngine::KeyLane> ShardedEngine::make_lane(
    ShardState& owner, std::uint32_t key) {
    auto lane = std::make_unique<KeyLane>();
    KeyLane* lp = lane.get();
    lp->key = key;
    lp->owner = &owner;
    // The lane sink runs on the owning shard task's thread mid-drain:
    // translate constituents back to global stream positions, then hand the
    // result to the merger tagged with the trigger currently being
    // processed. `owner` is re-pointed on migration (by the source task,
    // before the deposit), so a moved lane's results land in its new
    // shard's buffer under that shard's tags.
    event::ResultSink lane_sink = [lp](event::ComplexEvent&& ce) {
        lp->store.translate(ce.constituents);
        ShardState* sh = lp->owner;
        const std::lock_guard<std::mutex> lock(sh->mutex);
        sh->results.push_back(TaggedResult{sh->current_tag, std::move(ce)});
    };
    if (cfg_.instances == 0) {
        lp->stepper = std::make_unique<sequential::SeqStepper>(
            cq_, &lp->store.store(), std::move(lane_sink));
    } else {
        core::RuntimeConfig rc;
        rc.splitter.instances = static_cast<int>(cfg_.instances);
        rc.batch_events = cfg_.batch_events;
        lp->runtime = std::make_unique<core::SpectreRuntime>(
            &lp->store.store(), cq_, rc,
            std::make_unique<model::MarkovModel>(cq_->min_length(),
                                                 model::MarkovParams{}));
        lp->runtime->set_result_sink(std::move(lane_sink));
        if (obs_) lp->runtime->bind_obs(obs_);
    }
    return lane;
}

ShardedEngine::KeyLane& ShardedEngine::get_lane(ShardState& sh, std::uint32_t key) {
    auto it = sh.lanes.find(key);
    if (it == sh.lanes.end())
        it = sh.lanes.emplace(key, make_lane(sh, key)).first;
    return *it->second;
}

void ShardedEngine::install_incoming(ShardState& sh) {
    std::vector<std::unique_ptr<KeyLane>> arrived;
    {
        const std::lock_guard<std::mutex> lock(sh.mutex);
        if (sh.incoming.empty()) return;
        arrived.swap(sh.incoming);
        for (const auto& lane : arrived) sh.awaited.erase(lane->key);
    }
    for (auto& lane : arrived) {
        sh.lanes[lane->key] = std::move(lane);
        migrations_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void ShardedEngine::migrate_out(ShardState& sh, const Pending& p) {
    std::unique_ptr<KeyLane> lane;
    const auto it = sh.lanes.find(p.key);
    if (it != sh.lanes.end()) {
        lane = std::move(it->second);
        sh.lanes.erase(it);
    } else {
        // Key routed here but no arrival processed yet (all still queued at
        // the destination): hand over a fresh empty lane.
        lane = make_lane(sh, p.key);
    }
    ShardState& dest = *shards_[p.to];
    // Re-point before the deposit: the destination's mutex publishes the
    // write, and only the destination task touches the lane afterwards.
    lane->owner = &dest;
    {
        const std::lock_guard<std::mutex> lock(dest.mutex);
        dest.incoming.push_back(std::move(lane));
    }
    if (waker_) waker_(p.to);
}

void ShardedEngine::drain_lane_quiescent(KeyLane& lane) {
    if (lane.stepper) {
        // One unbounded drain processes every fully-arrived window.
        while (lane.stepper->drain(~std::size_t{0})) {
        }
        return;
    }
    // Cooperative SPECTRE: step() now reports quiescence explicitly — the
    // scheduling loop has driven the dependency graph to a fixed point for
    // the current frontier, with every buffered update drained and every
    // eligible retirement emitted (under the current trigger tag).
    for (;;) {
        const auto p = lane.runtime->step();
        if (p.done || p.quiescent) break;
    }
}

void ShardedEngine::process_event(ShardState& sh, Pending&& p) {
    KeyLane& lane = get_lane(sh, p.key);
    sh.current_tag = MergeTag{p.g, p.key};
    lane.store.append_mapped(std::move(p.e), p.g);
    drain_lane_quiescent(lane);
}

bool ShardedEngine::eos_step(ShardState& sh, std::size_t& budget) {
    while (budget > 0) {
        const auto it = sh.lanes.lower_bound(sh.eos_next_key);
        if (it == sh.lanes.end()) {
            const std::lock_guard<std::mutex> lock(sh.mutex);
            sh.eos_done = true;
            return false;
        }
        KeyLane& lane = *it->second;
        {
            const std::lock_guard<std::mutex> lock(sh.mutex);
            sh.eos_key = it->first;
        }
        sh.current_tag = MergeTag{kEosG, it->first};
        if (!lane.store.closed()) lane.store.close();
        bool lane_done = false;
        if (lane.stepper) {
            // Budget counts windows here — the unit the stepper bounds by.
            const bool more = lane.stepper->drain(budget);
            lane_done = lane.stepper->finished();
            if (more) budget = 0;
        } else {
            std::size_t steps = budget;
            while (steps > 0) {
                --steps;
                if (lane.runtime->step().done) {
                    lane_done = true;
                    break;
                }
            }
            budget = steps;
        }
        if (!lane_done) {
            if (budget == 0) return false;
            continue;  // same lane again
        }
        sh.eos_next_key = it->first + 1;
        if (budget > 0) --budget;  // charge the lane switch
    }
    return false;
}

ShardedEngine::StepResult ShardedEngine::step_shard(std::uint32_t s,
                                                    std::size_t max_events) {
    StepResult r;
    ShardState& sh = *shards_[s];
    std::size_t budget = max_events > 0 ? max_events : 1;
    while (budget > 0) {
        install_incoming(sh);
        bool have = false;
        bool blocked = false;
        Pending p;
        {
            const std::lock_guard<std::mutex> lock(sh.mutex);
            if (!sh.queue.empty()) {
                Pending& head = sh.queue.front();
                if (head.kind == Pending::Kind::Arrival &&
                    sh.awaited.count(head.key) != 0) {
                    // This key's lane is still in transit toward us;
                    // processing the arrival on a fresh lane would fork the
                    // sub-stream. Park — the deposit wakes us.
                    blocked = true;
                } else {
                    p = std::move(head);
                    sh.queue.pop_front();
                    if (p.kind == Pending::Kind::Arrival)
                        // Visible to the merger before the queue entry
                        // disappears: results for p.g are still pending
                        // until we clear this.
                        sh.inflight = MergeTag{p.g, p.key};
                    have = true;
                }
            }
        }
        if (blocked) {
            r.blocked = true;
            r.idle = true;
            break;
        }
        if (have) {
            if (p.kind == Pending::Kind::Migrate) {
                migrate_out(sh, p);  // markers are budget-free
                continue;
            }
            process_event(sh, std::move(p));
            {
                const std::lock_guard<std::mutex> lock(sh.mutex);
                sh.inflight = kInfTag;
            }
            queued_.fetch_sub(1, std::memory_order_acq_rel);
            ++r.events;
            --budget;
            continue;
        }
        if (!input_closed()) {
            r.idle = true;
            break;
        }
        bool done = false;
        bool can_eos = false;
        bool queue_empty = true;
        bool handoff_pending = false;
        bool mailbox_full = false;
        {
            const std::lock_guard<std::mutex> lock(sh.mutex);
            done = sh.eos_done;
            queue_empty = sh.queue.empty();
            handoff_pending = !sh.awaited.empty();
            mailbox_full = !sh.incoming.empty();
            // The per-shard gate, not the engine-level flag, authorizes the
            // EOS drain: once it is set (under this lock) no ingest can
            // enqueue here, so an EOS tag can never be followed by a
            // smaller arrival tag. A lane still in transit toward us also
            // vetoes EOS — its (EOS, key) results must not be skipped.
            can_eos = sh.input_closed && queue_empty && !handoff_pending &&
                      !mailbox_full;
            if (!done && can_eos) sh.eos_started = true;
        }
        if (done) break;
        if (!can_eos) {
            if (!queue_empty || mailbox_full) continue;  // raced-in work — go take it
            if (handoff_pending) {
                r.blocked = true;  // deposit (or rollback) wakes us
                r.idle = true;
                break;
            }
            r.idle = true;  // close in flight, gate not set yet — re-run on notify
            break;
        }
        eos_step(sh, budget);
    }
    merge_locked(r);
    {
        const std::lock_guard<std::mutex> lock(sh.mutex);
        r.shard_finished = sh.eos_done;
    }
    return r;
}

void ShardedEngine::merge_locked(StepResult& r) {
    const std::lock_guard<std::mutex> merge_lock(merge_mutex_);
    // Frontier before queues AND before the span: an event routed before
    // this load is either still queued/inflight (bounding below) or fully
    // processed (its results already pushed) — and because the feeder grows
    // task_span_ before routing anything to a new slot, any such event's
    // slot is inside the span loaded next.
    const event::Seq frontier = frontier_.load(std::memory_order_acquire);
    const std::uint32_t span = task_span_.load(std::memory_order_acquire);
    const bool closed = input_closed();

    // One lock round per shard: compute its lower bound AND splice off the
    // releasable prefix of its result buffer (tags within a shard ascend, so
    // the prefix below the eventual min bound is contiguous). Splicing the
    // whole buffer here and merging locally keeps the release loop lock-free
    // — O(results) work under merge_mutex_ only, not O(results × shards)
    // lock traffic.
    std::vector<std::deque<TaggedResult>> pending(span);
    MergeTag min_bound = kInfTag;
    bool eos_all_done = closed;
    for (std::size_t i = 0; i < span; ++i) {
        ShardState& t = *shards_[i];
        MergeTag b = kInfTag;
        const std::lock_guard<std::mutex> lock(t.mutex);
        if (t.eos_done) {
            b = kInfTag;
        } else if (t.eos_started) {
            // Sound only because eos_started is gated on the shard's
            // input_closed flag: no arrival tag can follow.
            b = MergeTag{kEosG, t.eos_key};
            eos_all_done = false;
        } else {
            if (!t.queue.empty()) b = MergeTag{t.queue.front().g, 0};
            if (t.inflight < b) b = t.inflight;
            // Even after close a not-yet-EOS shard is bounded by the
            // frontier, not by the EOS band — a trailing arrival may still
            // be racing the close gate.
            if (b == kInfTag) b = MergeTag{frontier, 0};
            eos_all_done = false;
        }
        if (b < min_bound) min_bound = b;
        pending[i].swap(t.results);
    }

    // K-way merge of the spliced buffers in ascending tag order; whatever is
    // not releasable yet goes back to its shard afterwards (prepend — the
    // owner may have pushed newer results meanwhile).
    for (;;) {
        std::size_t best = pending.size();
        for (std::size_t i = 0; i < pending.size(); ++i)
            if (!pending[i].empty() &&
                (best == pending.size() || pending[i].front().tag < pending[best].front().tag))
                best = i;
        if (best == pending.size() || !(pending[best].front().tag < min_bound)) break;
        TaggedResult tr = std::move(pending[best].front());
        pending[best].pop_front();
        emitted_.fetch_add(1, std::memory_order_relaxed);
        sink_(std::move(tr.ce));
    }
    bool buffers_empty = true;
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].empty()) continue;
        ShardState& t = *shards_[i];
        const std::lock_guard<std::mutex> lock(t.mutex);
        t.results.insert(t.results.begin(),
                         std::make_move_iterator(pending[i].begin()),
                         std::make_move_iterator(pending[i].end()));
        buffers_empty = false;
    }

    if (eos_all_done && buffers_empty) all_finished_.store(true, std::memory_order_release);
    r.all_finished = finished();
}

std::vector<event::ComplexEvent> reference_partitioned_run(
    const detect::CompiledQuery& cq, const std::vector<event::Event>& events) {
    SPECTRE_REQUIRE(cq.query().partition.active(),
                    "reference_partitioned_run needs a query with PARTITION BY");
    struct RefLane {
        event::MappedStore store;
        std::unique_ptr<sequential::SeqStepper> stepper;
    };
    std::vector<event::ComplexEvent> out;
    std::unordered_map<std::uint64_t, std::uint32_t> index;
    std::vector<std::unique_ptr<RefLane>> lanes;  // key-first-appearance order

    const auto lane_for = [&](const event::Event& e) -> RefLane& {
        const auto bits = key_bits(e, cq.query().partition);
        const auto [it, fresh] =
            index.try_emplace(bits, static_cast<std::uint32_t>(lanes.size()));
        if (fresh) {
            auto lane = std::make_unique<RefLane>();
            RefLane* lp = lane.get();
            lane->stepper = std::make_unique<sequential::SeqStepper>(
                &cq, &lp->store.store(), [&out, lp](event::ComplexEvent&& ce) {
                    lp->store.translate(ce.constituents);
                    out.push_back(std::move(ce));
                });
            lanes.push_back(std::move(lane));
        }
        return *lanes[it->second];
    };

    event::Seq g = 0;
    for (const auto& e : events) {
        RefLane& lane = lane_for(e);
        lane.store.append_mapped(e, g++);
        while (lane.stepper->drain(~std::size_t{0})) {
        }
    }
    for (const auto& lane : lanes) {
        lane->store.close();
        while (lane->stepper->drain(~std::size_t{0})) {
        }
    }
    return out;
}

}  // namespace spectre::shard
