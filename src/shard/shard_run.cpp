#include "shard/shard_run.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::shard {

std::vector<event::ComplexEvent> run_sharded_inline(
    const detect::CompiledQuery& cq, ShardedConfig cfg,
    const std::vector<event::Event>& events, std::size_t feed_chunk,
    std::size_t step_events,
    const std::function<void(ShardedEngine&, std::size_t)>& schedule) {
    std::vector<event::ComplexEvent> out;
    ShardedEngine engine(&cq, cfg,
                         [&out](event::ComplexEvent&& ce) { out.push_back(std::move(ce)); });
    std::size_t fed = 0;
    while (fed < events.size()) {
        const std::size_t end = std::min(events.size(), fed + std::max<std::size_t>(feed_chunk, 1));
        for (; fed < end; ++fed) engine.ingest(events[fed]);
        if (schedule) schedule(engine, fed);
        for (std::uint32_t s = 0; s < engine.shards(); ++s)
            engine.step_shard(s, step_events);
    }
    engine.close_input();
    while (!engine.finished())
        for (std::uint32_t s = 0; s < engine.shards(); ++s)
            engine.step_shard(s, step_events);
    return out;
}

server::EngineTask::Quantum PooledShardRun::Task::run_quantum() {
    const auto res = run->engine_->step_shard(shard, run->quantum_events_);
    if (res.shard_finished) return Quantum::Done;
    if (res.idle) {
        // Publish intent, then re-check (§9 parking protocol): an ingest or
        // close between the idle observation and the park flips the flag and
        // re-queues us — no lost wakeup.
        run->parked_[shard].store(true, std::memory_order_release);
        if (run->engine_->shard_parkable(shard)) return Quantum::Parked;
        run->parked_[shard].store(false, std::memory_order_relaxed);
    }
    return Quantum::MoreWork;
}

PooledShardRun::PooledShardRun(ShardedEngine* engine, server::EnginePool* pool,
                               std::uint64_t id_base, std::size_t quantum_events)
    : engine_(engine), pool_(pool), id_base_(id_base), quantum_events_(quantum_events) {
    SPECTRE_REQUIRE(engine_ != nullptr && pool_ != nullptr,
                    "PooledShardRun needs an engine and a pool");
    const std::uint32_t shards = engine_->shards();
    parked_ = std::make_unique<std::atomic<bool>[]>(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        parked_[s].store(false, std::memory_order_relaxed);
        auto task = std::make_unique<Task>();
        task->run = this;
        task->shard = s;
        tasks_.push_back(std::move(task));
    }
}

PooledShardRun::~PooledShardRun() = default;

void PooledShardRun::start() {
    SPECTRE_REQUIRE(!started_, "PooledShardRun::start called twice");
    started_ = true;
    // Lane handoffs (§13) are deposited by source shard tasks; the waker
    // runs on those worker threads and must flip the destination's park
    // flag before notifying — same protocol as the feeder-side wakeups.
    engine_->set_shard_waker([this](std::uint32_t s) {
        if (parked_[s].exchange(false, std::memory_order_acq_rel))
            pool_->notify(id_base_ + s);
    });
    for (std::uint32_t s = 0; s < engine_->shards(); ++s) {
        pool_->add(id_base_ + s, tasks_[s].get(), [this](std::uint64_t) {
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                ++done_;
            }
            cv_.notify_all();
        });
    }
}

ShardedEngine::IngestInfo PooledShardRun::ingest(event::Event e) {
    const auto info = engine_->ingest(std::move(e));
    // A dropped event (benign abort race) enqueued nothing: no wakeup.
    if (!info.dropped &&
        parked_[info.shard].exchange(false, std::memory_order_acq_rel))
        pool_->notify(id_base_ + info.shard);
    return info;
}

void PooledShardRun::close() {
    engine_->close_input();
    for (std::uint32_t s = 0; s < engine_->shards(); ++s)
        if (parked_[s].exchange(false, std::memory_order_acq_rel))
            pool_->notify(id_base_ + s);
}

void PooledShardRun::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_ == tasks_.size(); });
}

}  // namespace spectre::shard
