#include "shard/reshard_controller.hpp"

#include <algorithm>

namespace spectre::shard {

ReshardController::ReshardController(obs::Shard* scope,
                                     std::vector<obs::Series> lane_depth_peak,
                                     ReshardPolicy policy)
    : scope_(scope), peaks_(std::move(lane_depth_peak)), policy_(policy) {}

ReshardDecision ReshardController::decide(std::uint32_t active_shards) {
    ReshardDecision d;
    const auto n = static_cast<std::uint32_t>(
        std::min<std::size_t>(active_shards, peaks_.size()));
    if (!scope_ || n < 2) return d;

    std::uint64_t hot_peak = 0;
    std::uint64_t cold_peak = ~std::uint64_t{0};
    std::uint32_t hot = 0;
    std::uint32_t cold = 0;
    bool all_saturated = true;
    bool all_quiet = policy_.shrink_max_peak > 0;
    for (std::uint32_t s = 0; s < n; ++s) {
        const std::uint64_t v = scope_->value(peaks_[s]);
        scope_->set(peaks_[s], 0);  // next window starts now
        if (v > hot_peak) {
            hot_peak = v;
            hot = s;
        }
        if (v < cold_peak) {
            cold_peak = v;
            cold = s;
        }
        if (v < policy_.grow_min_peak) all_saturated = false;
        if (v >= policy_.shrink_max_peak) all_quiet = false;
    }
    ++decisions_;
    quiet_windows_ = all_quiet ? quiet_windows_ + 1 : 0;

    // Uniform overload first: stealing shuffles keys between equally-hot
    // slots for nothing — more slots is the only lever.
    if (policy_.grow_shards_to > active_shards && all_saturated &&
        n == active_shards) {
        d.kind = ReshardDecision::Kind::Grow;
        d.new_shards = policy_.grow_shards_to;
        return d;
    }
    if (hot != cold && hot_peak >= policy_.steal_min_peak &&
        static_cast<double>(hot_peak) >=
            policy_.steal_skew_ratio * static_cast<double>(cold_peak)) {
        d.kind = ReshardDecision::Kind::Steal;
        d.hot = hot;
        d.cold = cold;
        return d;
    }
    // Low-watermark shrink (§13, closes the ROADMAP "never shrinks" limit):
    // a sustained quiet streak halves the active width. The engine's
    // reshard() remaps routing only — old slots keep draining what they
    // already queued, so correctness is untouched (the parity test pins it).
    if (quiet_windows_ >= policy_.shrink_after_windows && active_shards >= 2 &&
        n == active_shards) {
        d.kind = ReshardDecision::Kind::Shrink;
        d.new_shards = active_shards / 2;
        quiet_windows_ = 0;  // restart the streak at the new width
    }
    return d;
}

}  // namespace spectre::shard
