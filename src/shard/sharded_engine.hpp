// Partition-parallel sharded detection (DESIGN.md §10, §13).
//
// A query that declares PARTITION BY (query::PartitionBy) applies
// independently to each distinct key value's sub-stream. That independence is
// what makes key-based data parallelism semantically free: a ShardedEngine
// hash-distributes the keys over S shards, each shard hosts the per-key
// engine lanes of the keys it owns (a lane = MappedStore + SeqStepper, or a
// cooperative SpectreRuntime when instances > 0 — the §9 step interfaces, so
// shards are pool tasks, never threads), and a deterministic merger
// interleaves the per-shard results back into ONE result stream that is
// byte-identical to the unsharded sequential run of the same input for every
// shard count and every schedule.
//
// Determinism comes from merge tags. The single-threaded reference
// (reference_partitioned_run) processes arrivals in global order: append
// event g to its key's lane, drain that lane to quiescence (emitting every
// window the arrival completed), move to g+1; at end-of-stream it drains the
// lanes in key-first-appearance order. Every emitted complex event therefore
// has a well-defined *trigger tag*: (g, key) for an arrival-driven emission,
// (EOS, key) for an end-of-stream one. A sharded run produces the exact same
// tagged results per key (same lane code, same sub-stream); the merger
// releases a result only once no shard can still produce a smaller tag —
// tracked by per-shard lower bounds (head of the shard's pending queue, the
// tag in flight, the router frontier for an idle shard, the EOS key cursor) —
// and emits in ascending tag order. Constituent seqs are translated back to
// global stream positions on the way out (event::MappedStore), so the output
// is indistinguishable from an engine that saw the whole stream.
//
// Elastic partitioning (§13) builds on the same tags: because a tag names a
// (global seq, key) trigger and never a shard, a lane can MOVE between shards
// mid-stream without perturbing the merged output. The feeder keeps a
// versioned key→shard routing table (each update is a *routing epoch*); a
// migration enqueues a marker in the source shard's FIFO, the source task
// hands the whole lane object to the destination's mailbox, and the
// destination blocks that key's arrivals until the lane is installed. The
// protocol serves both re-sharding (grow/shrink the active shard count and
// re-route every key) and key-skew lane stealing (move one hot/cold key).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detect/compiled_query.hpp"
#include "event/stream.hpp"
#include "obs/metrics.hpp"
#include "sequential/seq_engine.hpp"
#include "spectre/runtime.hpp"

namespace spectre::shard {

struct ShardedConfig {
    std::uint32_t shards = 1;
    // Slot capacity for online growth: reshard() can raise the active shard
    // count up to this many slots. 0 means "== shards" (no growth headroom,
    // the pre-elastic behavior). Drivers create one task per slot.
    std::uint32_t max_shards = 0;
    // Per-lane engine: 0 = sequential stepper (the throughput path);
    // > 0 = cooperative SpectreRuntime with that many operator instances.
    std::uint32_t instances = 0;
    std::size_t batch_events = 64;  // SpectreRuntime lane batch per step
};

class ShardedEngine {
public:
    // `cq` must outlive the engine and its query must declare a partition
    // key. `sink` receives the merged result stream (called under the merge
    // lock, from whichever shard task merges; it must not re-enter the
    // engine).
    ShardedEngine(const detect::CompiledQuery* cq, ShardedConfig cfg,
                  event::ResultSink sink);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine&) = delete;
    ShardedEngine& operator=(const ShardedEngine&) = delete;

    // Slot capacity (max(shards, max_shards)): how many shard tasks a driver
    // must create so every slot reshard() may ever route to has a stepper.
    std::uint32_t shards() const noexcept {
        return static_cast<std::uint32_t>(slot_count_);
    }
    // Current routing width: fresh keys hash over [0, active_shards).
    std::uint32_t active_shards() const noexcept {
        return active_shards_.load(std::memory_order_acquire);
    }
    // Slots the merger consults (monotone: grows with reshard, never
    // shrinks while running — a shrunk-away slot still drains its EOS).
    std::uint32_t task_span() const noexcept {
        return task_span_.load(std::memory_order_acquire);
    }

    // --- feeder side (exactly one thread) -----------------------------------

    struct IngestInfo {
        std::uint32_t shard = 0;  // where the event went (notify its task)
        std::size_t queued = 0;   // total pending events after the push
        // The benign abort-race drop: input closed under the feeder, the
        // event was NOT enqueued. Callers must skip wakeup / arrival-stamp /
        // backpressure bookkeeping for this event.
        bool dropped = false;
    };
    // Routes one event to its key's shard. Must not be called after
    // close_input().
    IngestInfo ingest(event::Event e);

    // Publishes end-of-stream (idempotent). Callers then notify every shard
    // task so parked ones run their end-of-stream drains.
    void close_input();
    bool input_closed() const noexcept {
        return closed_.load(std::memory_order_acquire);
    }

    // Total events routed but not yet processed (ingest backpressure).
    std::size_t queued_total() const noexcept {
        return queued_.load(std::memory_order_acquire);
    }

    // --- elastic partitioning (feeder thread; DESIGN.md §13) ----------------

    // Re-route every key under a new active shard count (hash % new_shards)
    // and migrate the lanes whose placement changed. One routing-epoch bump;
    // refused (returns false) while a previous migration wave is still in
    // flight, after close_input, or when new_shards exceeds the slot
    // capacity. Growing raises task_span(); shrinking leaves the old slots
    // stepping until they drain at EOS.
    bool reshard(std::uint32_t new_shards);

    // Key-skew lane stealing: move the hottest key of `from` that is
    // *lighter than the load gap* to `to` — a key hotter than the gap would
    // just re-pin the destination (ping-pong), so an 80%-hot key stays put
    // and the cold keys drain off its shard instead. Heat is a decayed
    // per-key arrival count maintained by ingest(). Same refusal rules as
    // reshard(); returns false when no key improves the balance.
    bool steal_hottest(std::uint32_t from, std::uint32_t to);

    // Move one specific key's lane (tests / explicit schedules). Same
    // refusal rules; `to` must be inside task_span().
    bool migrate_key(std::uint32_t key, std::uint32_t to);

    // True once every armed migration's lane is installed at its
    // destination. New waves are refused until then (one wave at a time
    // keeps a reshard from racing a lane that is still in transit).
    bool migration_idle() const noexcept {
        return migrations_inflight_.load(std::memory_order_acquire) == 0;
    }

    struct MigrationStats {
        std::uint64_t reshards = 0;    // accepted reshard() calls
        std::uint64_t steals = 0;      // accepted steal/migrate calls
        std::uint64_t keys_moved = 0;  // lanes armed for migration
        std::uint32_t epoch = 0;       // current routing epoch
    };
    // Feeder-thread read (same thread that ingests / migrates).
    MigrationStats migration_stats() const noexcept;

    // Feeder-thread read of key `k`'s current route (tests).
    std::uint32_t key_route(std::uint32_t key) const {
        return key_route_[key].shard;
    }

    // Called (from a shard task) when a migration deposits a lane into shard
    // `s`'s mailbox or a rolled-back wave un-blocks it: the driver must wake
    // shard `s`'s task. Set before the shard tasks start; may be invoked
    // from any shard task thread.
    void set_shard_waker(std::function<void(std::uint32_t)> waker) {
        waker_ = std::move(waker);
    }

    // --- shard task side (one logical caller per shard) ---------------------

    struct StepResult {
        std::size_t events = 0;      // arrivals processed this call
        bool idle = false;           // nothing to do until woken
        bool blocked = false;        // head arrival waits on a lane in transit
        bool shard_finished = false; // this shard fully drained incl. EOS
        bool all_finished = false;   // every shard done and every result merged
    };
    // One bounded quantum of shard `s`: install any migrated-in lanes,
    // process up to `max_events` pending arrivals (append to lane, drain
    // lane to quiescence, tag results), hand off migrated-out lanes, run the
    // end-of-stream drains once the input closed, then merge. Never blocks
    // on I/O; serialize calls per shard (the pool's task state machine
    // already does).
    StepResult step_shard(std::uint32_t s, std::size_t max_events);

    // Park predicate for shard `s`'s task: nothing to do until an ingest, a
    // close, or a lane handoff (waker) arrives.
    bool shard_parkable(std::uint32_t s) const;

    bool finished() const noexcept {
        return all_finished_.load(std::memory_order_acquire);
    }
    std::uint64_t results_emitted() const noexcept {
        return emitted_.load(std::memory_order_relaxed);
    }
    std::uint32_t key_count() const;

    // --- observability (DESIGN.md §12) --------------------------------------

    // Metrics plane: when bound, every speculative lane runtime created from
    // here on records its splitter-cycle durations into `shard` (call before
    // the first ingest; the shard must outlive the engine).
    void bind_obs(obs::Shard* shard) noexcept { obs_ = shard; }

    // Aggregated scheduler / splitter stats over shard `s`'s speculative
    // lanes, merged with SchedStats::merge / SplitterMetrics::merge (counts
    // sum, peaks max). Lanes are task-private: call from shard `s`'s own
    // task, or once finished() — this closes the sharded-session stats gap
    // where per-lane SchedStats were dropped on the floor.
    core::SchedStats shard_sched_stats(std::uint32_t s) const;
    core::SplitterMetrics shard_splitter_metrics(std::uint32_t s) const;
    // Whole-engine aggregation; call only when no shard task is stepping
    // (drivers call it after wait()/finished()).
    core::SchedStats sched_stats() const;
    core::SplitterMetrics splitter_metrics() const;

    // Pending arrivals queued on shard `s` right now (lock-taken; the live
    // lane-depth signal adaptive re-sharding consumes).
    std::size_t shard_queue_depth(std::uint32_t s) const;

private:
    // Merge tag: (g, key) for arrival-driven emissions, (kEosG, key) for
    // end-of-stream drains, kInfTag = "nothing further".
    struct MergeTag {
        std::uint64_t g = 0;
        std::uint32_t key = 0;
        bool operator<(const MergeTag& o) const {
            return g != o.g ? g < o.g : key < o.key;
        }
        bool operator==(const MergeTag&) const = default;
    };
    static constexpr std::uint64_t kEosG = ~std::uint64_t{0} - 1;
    static constexpr MergeTag kInfTag{~std::uint64_t{0}, ~std::uint32_t{0}};
    static constexpr std::uint32_t kNoKey = ~std::uint32_t{0};

    struct KeyLane;
    struct Pending;
    struct TaggedResult;
    struct ShardState;

    // Key → current shard, stamped with the routing epoch that placed it.
    struct RouteEntry {
        std::uint32_t shard = 0;
        std::uint32_t epoch = 0;
    };
    struct EpochRecord {
        event::Seq boundary_g = 0;  // first g routed under this epoch
        std::uint32_t width = 0;    // active shard count of this epoch
    };

    std::unique_ptr<KeyLane> make_lane(ShardState& owner, std::uint32_t key);
    KeyLane& get_lane(ShardState& sh, std::uint32_t key);
    void process_event(ShardState& sh, Pending&& p);
    void drain_lane_quiescent(KeyLane& lane);
    // Runs end-of-stream lane drains for up to `budget` units; returns false
    // once the budget is exhausted with work left.
    bool eos_step(ShardState& sh, std::size_t& budget);
    void merge_locked(StepResult& r);
    // Migration plumbing: install mailbox lanes (destination task), hand a
    // lane off (source task), arm one key's move (feeder).
    void install_incoming(ShardState& sh);
    void migrate_out(ShardState& sh, const Pending& p);
    bool arm_migration(std::uint32_t key, std::uint32_t to);
    bool migrations_allowed() const;
    void decay_heat();

    const detect::CompiledQuery* cq_;
    const ShardedConfig cfg_;
    const std::size_t slot_count_;
    event::ResultSink sink_;
    obs::Shard* obs_ = nullptr;
    std::vector<std::unique_ptr<ShardState>> shards_;
    std::function<void(std::uint32_t)> waker_;

    // Feeder-private router state.
    std::unordered_map<std::uint64_t, std::uint32_t> key_index_;  // bits → dense
    std::vector<RouteEntry> key_route_;                           // dense → route
    std::vector<std::uint64_t> key_bits_;                         // dense → bits
    std::vector<std::uint64_t> key_heat_;    // decayed arrival counts
    std::vector<std::uint64_t> shard_heat_;  // per-slot sum of key heat
    std::vector<EpochRecord> epochs_;        // routing-epoch history
    std::uint32_t epoch_ = 0;
    std::uint64_t reshards_ = 0;
    std::uint64_t steals_ = 0;
    std::uint64_t keys_moved_ = 0;
    event::Seq next_g_ = 0;

    // Published router frontier: every event with g < frontier_ is visible in
    // its shard's queue (or beyond); idle shards can produce nothing below it.
    std::atomic<event::Seq> frontier_{0};
    std::atomic<std::uint32_t> active_shards_;
    std::atomic<std::uint32_t> task_span_;
    std::atomic<std::uint32_t> migrations_inflight_{0};
    std::atomic<bool> closed_{false};
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::uint64_t> emitted_{0};
    std::atomic<bool> all_finished_{false};

    std::mutex merge_mutex_;
};

// The parity oracle: the unsharded sequential run of a partitioned query —
// per-key SeqStepper lanes driven single-threadedly in global arrival order,
// end-of-stream drains in key-first-appearance order. A sharded run of any
// shard count AND any migration schedule reproduces this byte-identically; on
// a single-key stream it is itself byte-identical to SequentialEngine::run
// over the whole input.
std::vector<event::ComplexEvent> reference_partitioned_run(
    const detect::CompiledQuery& cq, const std::vector<event::Event>& events);

}  // namespace spectre::shard
