// Drivers for ShardedEngine outside the server (DESIGN.md §10): the
// deterministic inline runner the differential tests schedule by hand, and
// the pooled runner that scales one hot partitioned stream across an
// EnginePool's workers — S shard tasks on N threads, no thread per shard —
// which is what bench_shard_scaling measures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "server/engine_pool.hpp"
#include "shard/sharded_engine.hpp"

namespace spectre::shard {

// Single-threaded sharded run with an adversarially boring schedule: feed
// `feed_chunk` events, round-robin one bounded step per shard, repeat; then
// close and step until finished. Exercises every merge-bound path without
// threads — output must be byte-identical to reference_partitioned_run.
// `schedule`, when set, runs on the feeder between feed chunks (with the
// number of events fed so far) so tests can inject reshard()/migrate_key()
// waves at chosen stream positions — the §13 migration differential.
std::vector<event::ComplexEvent> run_sharded_inline(
    const detect::CompiledQuery& cq, ShardedConfig cfg,
    const std::vector<event::Event>& events, std::size_t feed_chunk = 7,
    std::size_t step_events = 3,
    const std::function<void(ShardedEngine&, std::size_t)>& schedule = {});

// Runs a ShardedEngine's S shards as cooperative tasks on an existing
// (started) EnginePool. The feeder thread calls ingest()/close(); wait()
// blocks until every shard task finished (all results are in the sink by
// then). Task ids occupy [id_base, id_base + shards).
class PooledShardRun {
public:
    PooledShardRun(ShardedEngine* engine, server::EnginePool* pool,
                   std::uint64_t id_base, std::size_t quantum_events = 128);
    ~PooledShardRun();

    PooledShardRun(const PooledShardRun&) = delete;
    PooledShardRun& operator=(const PooledShardRun&) = delete;

    // Registers the shard tasks and schedules their first quanta. Call once.
    void start();

    // Feeder side (one thread): route an event and wake its shard's task.
    // Returns the engine's routing info (shard, depth, dropped) so callers
    // can publish lane-depth metrics and drive a ReshardController.
    ShardedEngine::IngestInfo ingest(event::Event e);
    // End-of-stream: wake every shard for its EOS drain.
    void close();
    // Blocks until all shard tasks returned Done. The pool must stay alive.
    void wait();

private:
    struct Task final : server::EngineTask {
        PooledShardRun* run = nullptr;
        std::uint32_t shard = 0;
        Quantum run_quantum() override;
    };

    ShardedEngine* engine_;
    server::EnginePool* pool_;
    const std::uint64_t id_base_;
    const std::size_t quantum_events_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::unique_ptr<std::atomic<bool>[]> parked_;

    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t done_ = 0;
    bool started_ = false;
};

}  // namespace spectre::shard
