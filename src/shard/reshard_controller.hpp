// Metrics-driven elastic-partitioning policy (DESIGN.md §13). The controller
// never runs its own sampling: its only input is the live per-shard-index
// `lane_depth_peak{shard=...}` series that the ingest path already publishes
// into the §12 obs::Registry. Each decide() call reads the peaks accumulated
// since the previous call, zeroes them (turning the lifetime peak cells into
// a windowed signal), and proposes at most one action — a key-skew lane
// steal from the hottest slot to the coldest, or a grow-reshard when every
// active slot is saturated. The caller (the feeder thread: the server
// reactor or a bench/test driver) applies the decision through
// ShardedEngine::steal_hottest() / reshard(), which enforce the actual
// migration-safety rules (one wave at a time, never after close).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace spectre::shard {

struct ReshardPolicy {
    // Pacing: callers invoke decide() about every this-many ingested events.
    // 0 disables the controller entirely (static hashing, the pre-§13
    // behavior).
    std::size_t decide_every_events = 0;
    // Steal when the hottest slot's windowed depth peak reaches this many
    // queued events…
    std::uint64_t steal_min_peak = 256;
    // …and is at least this many times the coldest slot's peak.
    double steal_skew_ratio = 4.0;
    // Grow the active shard count to this width (0 = never grow) once every
    // active slot's windowed peak reaches grow_min_peak — skew stealing
    // can't help when all slots are hot.
    std::uint32_t grow_shards_to = 0;
    std::uint64_t grow_min_peak = 1024;
    // Shrink the active width to half once EVERY active slot's windowed peak
    // stayed below shrink_max_peak for shrink_after_windows consecutive
    // decide() windows — sustained idleness, not one quiet window, releases
    // slots (grow/steal pressure resets the streak). 0 disables shrinking
    // (the pre-shrink behavior; ROADMAP's "never shrinks" honest limit).
    std::uint64_t shrink_max_peak = 0;
    std::uint32_t shrink_after_windows = 4;
};

struct ReshardDecision {
    enum class Kind { None, Steal, Grow, Shrink };
    Kind kind = Kind::None;
    std::uint32_t hot = 0;         // Steal: source slot
    std::uint32_t cold = 0;        // Steal: destination slot
    std::uint32_t new_shards = 0;  // Grow / Shrink: target active width
};

class ReshardController {
public:
    // `scope` is the metrics shard the ingest path writes its per-slot
    // depth peaks into (one series per slot index, in slot order); both must
    // outlive the controller. A null scope or empty series set yields
    // Kind::None forever — so does SPECTRE_OBS_OFF, which zeroes the
    // signal: the kill switch also switches adaptivity off.
    ReshardController(obs::Shard* scope,
                      std::vector<obs::Series> lane_depth_peak,
                      ReshardPolicy policy);

    // One decision over the window since the previous call, resetting the
    // windowed peaks. Call from the feeder thread.
    ReshardDecision decide(std::uint32_t active_shards);

    const ReshardPolicy& policy() const noexcept { return policy_; }
    std::uint64_t decisions() const noexcept { return decisions_; }

private:
    obs::Shard* scope_;
    std::vector<obs::Series> peaks_;
    ReshardPolicy policy_;
    std::uint64_t decisions_ = 0;
    std::uint32_t quiet_windows_ = 0;  // consecutive all-below-low windows
};

}  // namespace spectre::shard
