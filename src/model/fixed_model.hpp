// Fixed-probability completion model: every consumption group gets the same
// constant completion probability, regardless of its δ or the remaining
// window length. This is the baseline the paper sweeps from 0% to 100% in
// Fig. 11 to show that (a) the right constant is workload-dependent and
// (b) the Markov model finds it automatically.
#pragma once

#include "model/completion_model.hpp"

#include "util/assert.hpp"

namespace spectre::model {

class FixedModel final : public CompletionModel {
public:
    explicit FixedModel(double probability) : p_(probability) {
        SPECTRE_REQUIRE(probability >= 0.0 && probability <= 1.0,
                        "completion probability out of [0,1]");
    }

    double completion_probability(int, std::uint64_t) const override { return p_; }

private:
    double p_;
};

}  // namespace spectre::model
