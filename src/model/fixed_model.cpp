#include "model/fixed_model.hpp"

// Header-only; this translation unit exists so the target has a home for the
// class and future non-inline additions.
