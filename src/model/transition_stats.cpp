#include "model/transition_stats.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::model {

StateMap::StateMap(int max_delta, int state_count)
    : max_delta_(std::max(1, max_delta)), states_(state_count) {
    SPECTRE_REQUIRE(state_count >= 2, "state map needs at least 2 states");
    states_ = std::min(states_, max_delta_ + 1);
}

int StateMap::state_of(int delta) const {
    if (delta <= 0) return 0;
    const int d = std::min(delta, max_delta_);
    // Affine map (0, max_delta] -> (0, states-1]; rounding up keeps every
    // positive delta out of the absorbing state 0.
    const int s = (d * (states_ - 1) + max_delta_ - 1) / max_delta_;
    return std::max(1, std::min(s, states_ - 1));
}

TransitionStats::TransitionStats(const StateMap& map)
    : map_(map),
      counts_(static_cast<std::size_t>(map.states()), static_cast<std::size_t>(map.states())) {}

void TransitionStats::observe(int delta_from, int delta_to) {
    const auto from = static_cast<std::size_t>(map_.state_of(delta_from));
    const auto to = static_cast<std::size_t>(map_.state_of(delta_to));
    counts_(from, to) += 1.0;
    ++samples_;
}

void TransitionStats::merge(const TransitionStats& other) {
    SPECTRE_REQUIRE(other.map_.states() == map_.states(), "state map mismatch in merge");
    counts_ = counts_.blend(1.0, other.counts_, 1.0);
    samples_ += other.samples_;
}

void TransitionStats::reset() {
    counts_ = util::Matrix(counts_.rows(), counts_.cols());
    samples_ = 0;
}

util::Matrix TransitionStats::estimate() const {
    util::Matrix t = counts_;
    for (std::size_t r = 0; r < t.rows(); ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < t.cols(); ++c) sum += t(r, c);
        if (sum <= 0.0) {
            // No evidence: assume the state holds (self-loop), which is the
            // conservative "no progress" prior.
            for (std::size_t c = 0; c < t.cols(); ++c) t(r, c) = 0.0;
            t(r, r) = 1.0;
        } else {
            for (std::size_t c = 0; c < t.cols(); ++c) t(r, c) /= sum;
        }
    }
    return t;
}

}  // namespace spectre::model
