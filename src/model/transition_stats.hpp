// TransitionStats: run-time δ-transition counts feeding the Markov model.
//
// Operator instances accumulate counts locally while processing independent
// windows and flush them to the splitter in batches; the splitter merges them
// into the model. δ values are bucketed into a capped state space
// (DESIGN.md §4.5): the paper's chain has one state per δ, which is
// infeasible for patterns thousands of events long (Q1 with q=2560), so δ is
// mapped affinely onto `state_count` states with state 0 = completed.
#pragma once

#include <cstdint>

#include "util/matrix.hpp"

namespace spectre::model {

// Affine δ→state bucketing shared by stats and model.
class StateMap {
public:
    // `max_delta` is the pattern's minimum length (initial δ);
    // `state_count` caps the chain (>= 2).
    StateMap(int max_delta, int state_count);

    int state_of(int delta) const;
    int states() const noexcept { return states_; }
    int max_delta() const noexcept { return max_delta_; }

private:
    int max_delta_;
    int states_;
};

class TransitionStats {
public:
    explicit TransitionStats(const StateMap& map);

    void observe(int delta_from, int delta_to);
    void merge(const TransitionStats& other);
    void reset();

    std::uint64_t samples() const noexcept { return samples_; }

    // Row-stochastic estimate from the accumulated counts. Rows without
    // samples become self-loops (no evidence of progress).
    util::Matrix estimate() const;

    const StateMap& map() const noexcept { return map_; }

private:
    StateMap map_;
    util::Matrix counts_;
    std::uint64_t samples_ = 0;
};

}  // namespace spectre::model
