// MarkovModel: the paper's completion-probability predictor (§3.2.1, Fig. 5).
//
// Pattern completion is modeled as a discrete-time Markov chain over δ
// (events still needed), with state 0 = completed. A transition matrix T1 is
// estimated from run-time statistics; after every ρ new samples the estimate
// is folded in with exponential smoothing, T1 = (1-α)·T1_old + α·T1_new.
// Predictions for "complete within n more events" use precomputed step
// tables at multiples of the step size ℓ with linear interpolation in
// between — exactly Fig. 5 line 6 — with one implementation refinement
// (DESIGN.md §4.5): instead of materializing full matrix powers T^{jℓ}
// (O(S³) each), we keep only the completion-probability column
//   c_j[s] = P(reach state 0 within j·ℓ steps | start s)
// via the vector recurrence c_j = A·c_{j-1}, A = T1^ℓ with state 0 made
// absorbing. That is O(S²) per step and gives bit-identical predictions to
// the matrix-power formulation (asserted in tests).
#pragma once

#include <cstdint>
#include <vector>

#include "model/completion_model.hpp"
#include "model/transition_stats.hpp"

namespace spectre::model {

struct MarkovParams {
    double alpha = 0.7;        // smoothing weight of new statistics (paper: 0.7)
    int step = 10;             // ℓ, precomputed step size (paper: 10)
    int state_count = 64;      // state-space cap (DESIGN.md substitution 5)
    std::uint64_t refresh_every = 2000;  // ρ, samples between refreshes
    // Prior probability that one event advances the pattern by one state;
    // used to seed T1 before any statistics exist.
    double initial_advance_prob = 0.5;
};

class MarkovModel final : public CompletionModel {
public:
    // `max_delta` is the pattern's minimum length (the initial δ).
    MarkovModel(int max_delta, MarkovParams params);

    double completion_probability(int delta, std::uint64_t events_left) const override;
    void observe(int delta_from, int delta_to) override;
    void refresh() override;

    // Folds a whole batch of counts in (operator instances accumulate
    // locally and flush per batch).
    void merge(const TransitionStats& batch);

    const StateMap& state_map() const noexcept { return map_; }
    const util::Matrix& transition_matrix() const noexcept { return t1_; }
    std::uint64_t total_samples() const noexcept { return total_samples_; }

    // Test hook: P(complete within `steps` events | δ) computed from the
    // current T1 by explicit matrix powers — the reference the table-based
    // fast path must match.
    double reference_probability(int delta, std::uint64_t steps) const;

private:
    void rebuild_tables();
    void ensure_horizon(std::size_t j) const;

    StateMap map_;
    MarkovParams params_;
    TransitionStats pending_;
    util::Matrix t1_;            // current smoothed transition matrix
    util::Matrix step_matrix_;   // A = T1^ℓ with state 0 absorbing
    // completion_[j][s] = P(complete within j·ℓ steps | state s); grown
    // lazily as larger horizons are queried (mutable for the const API).
    mutable std::vector<std::vector<double>> completion_;
    std::uint64_t total_samples_ = 0;
    bool seeded_ = false;  // true once real statistics entered t1_
};

}  // namespace spectre::model
