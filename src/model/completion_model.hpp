// CompletionModel: predicts the probability that a consumption group's
// underlying partial match completes (§3.2.1).
//
// The splitter queries the model for every pending consumption group at every
// scheduling cycle; window-version survival probabilities — and therefore the
// entire top-k schedule — derive from these predictions. Two implementations:
//   MarkovModel — the paper's discrete-time Markov chain learned at run time,
//   FixedModel  — assigns every group the same constant probability (the
//                 comparison baseline of Fig. 11).
#pragma once

#include <cstdint>

namespace spectre::model {

class CompletionModel {
public:
    virtual ~CompletionModel() = default;

    // Probability that a partial match needing at least `delta` more events
    // completes within the next `events_left` events of its window.
    virtual double completion_probability(int delta, std::uint64_t events_left) const = 0;

    // Feeds one observed δ transition (from processing a single event).
    // Engines only report transitions observed in independent (root) windows,
    // per §3.2.1 ("window versions of independent windows gather statistics").
    virtual void observe(int /*delta_from*/, int /*delta_to*/) {}

    // Gives the model a chance to rebuild derived tables; called by the
    // splitter between scheduling cycles.
    virtual void refresh() {}
};

}  // namespace spectre::model
