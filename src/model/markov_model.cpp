#include "model/markov_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace spectre::model {

namespace {

// Forces state 0 absorbing: once a pattern completes it stays completed.
util::Matrix make_absorbing(util::Matrix t) {
    for (std::size_t c = 0; c < t.cols(); ++c) t(0, c) = 0.0;
    t(0, 0) = 1.0;
    return t;
}

util::Matrix matrix_power(const util::Matrix& m, std::uint64_t n) {
    util::Matrix result = util::Matrix::identity(m.rows());
    util::Matrix base = m;
    while (n > 0) {
        if (n & 1) result = result.multiply(base);
        base = base.multiply(base);
        n >>= 1;
    }
    return result;
}

}  // namespace

MarkovModel::MarkovModel(int max_delta, MarkovParams params)
    : map_(max_delta, params.state_count), params_(params), pending_(map_) {
    SPECTRE_REQUIRE(params.alpha >= 0.0 && params.alpha <= 1.0, "alpha out of [0,1]");
    SPECTRE_REQUIRE(params.step >= 1, "step size must be >= 1");
    SPECTRE_REQUIRE(params.initial_advance_prob >= 0.0 && params.initial_advance_prob <= 1.0,
                    "initial advance probability out of [0,1]");

    // Seed T1 with the prior: advance one state with probability p, hold
    // otherwise. This keeps early predictions sane until statistics arrive.
    const auto s = static_cast<std::size_t>(map_.states());
    t1_ = util::Matrix(s, s);
    for (std::size_t r = 0; r < s; ++r) {
        if (r == 0) {
            t1_(0, 0) = 1.0;
        } else {
            t1_(r, r - 1) = params.initial_advance_prob;
            t1_(r, r) = 1.0 - params.initial_advance_prob;
        }
    }
    rebuild_tables();
}

void MarkovModel::observe(int delta_from, int delta_to) {
    pending_.observe(delta_from, delta_to);
    ++total_samples_;
    if (pending_.samples() >= params_.refresh_every) refresh();
}

void MarkovModel::merge(const TransitionStats& batch) {
    pending_.merge(batch);
    total_samples_ += batch.samples();
    if (pending_.samples() >= params_.refresh_every) refresh();
}

void MarkovModel::refresh() {
    if (pending_.samples() == 0) return;
    const util::Matrix t_new = pending_.estimate();
    // First real statistics replace the synthetic prior outright; afterwards
    // exponential smoothing (§3.2.1): T1 = (1-α)·T1_old + α·T1_new.
    t1_ = seeded_ ? t1_.blend(1.0 - params_.alpha, t_new, params_.alpha) : t_new;
    seeded_ = true;
    pending_.reset();
    rebuild_tables();
}

void MarkovModel::rebuild_tables() {
    step_matrix_ = matrix_power(make_absorbing(t1_), static_cast<std::uint64_t>(params_.step));
    completion_.clear();
    // c_0: complete within 0 steps iff already in state 0.
    std::vector<double> c0(static_cast<std::size_t>(map_.states()), 0.0);
    c0[0] = 1.0;
    completion_.push_back(std::move(c0));
}

void MarkovModel::ensure_horizon(std::size_t j) const {
    while (completion_.size() <= j) {
        // c_{j} = A · c_{j-1}: one more ℓ-step block of look-ahead.
        completion_.push_back(step_matrix_.right_multiply(completion_.back()));
    }
}

double MarkovModel::completion_probability(int delta, std::uint64_t events_left) const {
    const int state = map_.state_of(delta);
    if (state == 0) return 1.0;
    // Fig. 5 lines 3–5: at least one more event is expected.
    const std::uint64_t n = std::max<std::uint64_t>(events_left, 1);

    const auto step = static_cast<std::uint64_t>(params_.step);
    const std::size_t j_lo = n / step;
    const std::size_t j_hi = (n + step - 1) / step;
    ensure_horizon(j_hi);
    // Clamp away accumulated floating-point drift from the power iteration.
    const auto as_probability = [](double p) { return std::clamp(p, 0.0, 1.0); };
    const double lo = completion_[j_lo][static_cast<std::size_t>(state)];
    if (j_lo == j_hi) return as_probability(lo);
    const double hi = completion_[j_hi][static_cast<std::size_t>(state)];
    // Fig. 5 line 6: linear interpolation between the precomputed steps.
    const double frac = static_cast<double>(n - j_lo * step) / static_cast<double>(step);
    return as_probability((1.0 - frac) * lo + frac * hi);
}

double MarkovModel::reference_probability(int delta, std::uint64_t steps) const {
    const int state = map_.state_of(delta);
    if (state == 0) return 1.0;
    const util::Matrix tn = matrix_power(make_absorbing(t1_), steps);
    return tn(static_cast<std::size_t>(state), 0);
}

}  // namespace spectre::model
