#include "event/schema.hpp"

#include "util/assert.hpp"

namespace spectre::event {

AttrSlot Schema::intern_attr(std::string_view name) {
    const auto existing = attrs_.lookup(name);
    if (existing != util::kInvalidIntern) return existing;
    SPECTRE_REQUIRE(attrs_.size() < kMaxAttrs, "too many attributes for event layout");
    return attrs_.intern(name);
}

AttrSlot Schema::lookup_attr(std::string_view name) const {
    const auto id = attrs_.lookup(name);
    return id == util::kInvalidIntern ? kMaxAttrs : static_cast<AttrSlot>(id);
}

const std::string& Schema::attr_name(AttrSlot slot) const {
    return attrs_.name(static_cast<util::InternId>(slot));
}

}  // namespace spectre::event
