// ChunkPins: refcounted read pins over one shared EventStore (DESIGN.md §15).
//
// A published stream's store is written by one publisher session and read by
// many subscriber engines, each at its own pace. The store's chunk directory
// makes reclamation natural — a 4096-event chunk can be freed once every
// reader has moved past it — but the store itself must stay lock-free on the
// hot paths, so the bookkeeping lives here, in a sidecar the hub owns:
//
//   * attach() registers a reader cursor at seq 0 (readers always start at
//     the beginning of the stream — late subscribers replay history).
//   * advance(cursor, seq) is the reader's promise that it will never again
//     address any seq below `seq`. It is monotone per cursor; regressions
//     are ignored.
//   * detach(cursor) drops the cursor (the reader is gone).
//
// After every advance/detach the pins reclaim: chunks wholly below the
// minimum over all live cursors (and below the store frontier) are freed via
// EventStore::release_chunks_below. Two deliberate retention rules keep
// late-subscribe replay sound:
//
//   * With zero live cursors nothing is reclaimed — a stream with no
//     subscribers keeps its full history so a late subscriber can attach.
//   * Once any chunk HAS been reclaimed, attach() refuses (returns
//     kInvalidCursor): a reader that cannot start from seq 0 would violate
//     the parity invariant (its RESULT stream must be byte-identical to a
//     standalone run over the whole stream), so the hub turns that into a
//     subscribe-time error instead of silently wrong results.
//
// Thread safety: every method takes the internal mutex; attach/detach run on
// the server reactor, advance on whichever pool worker steps the subscriber's
// engine. The mutex also serializes release_chunks_below, satisfying the
// store's contract.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "event/stream.hpp"

namespace spectre::event {

class ChunkPins {
public:
    using Cursor = std::size_t;
    static constexpr Cursor kInvalidCursor = static_cast<Cursor>(-1);

    explicit ChunkPins(EventStore* store) : store_(store) {}

    ChunkPins(const ChunkPins&) = delete;
    ChunkPins& operator=(const ChunkPins&) = delete;

    // Registers a reader at seq 0. Returns kInvalidCursor when history has
    // already been reclaimed (the stream can no longer be replayed from the
    // start).
    Cursor attach();

    // Monotonically raises the cursor's low watermark: the reader guarantees
    // it will never again address a seq below `next_needed`. Returns the
    // number of store chunks this call freed (0 when another cursor still
    // pins them).
    std::size_t advance(Cursor cursor, Seq next_needed);

    // Drops the cursor. Returns chunks freed by its departure. With no other
    // live cursor nothing is freed — history is retained for late attachers.
    std::size_t detach(Cursor cursor);

    // First seq still addressable (0 = full history retained).
    Seq reclaimed_until() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return reclaimed_until_;
    }
    std::size_t live_cursors() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return live_;
    }
    std::uint64_t chunks_reclaimed() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return chunks_reclaimed_;
    }

private:
    // Frees chunks below the min live watermark; returns chunks freed.
    // Requires mutex_ held and live_ > 0.
    std::size_t reclaim_locked();

    EventStore* store_;
    mutable std::mutex mutex_;
    // Per-cursor low watermark; kDetached marks a released slot (slots are
    // never reused — cursor count is bounded by subscriber churn per stream).
    static constexpr Seq kDetached = static_cast<Seq>(-1);
    std::vector<Seq> next_needed_;
    std::size_t live_ = 0;
    Seq reclaimed_until_ = 0;
    std::uint64_t chunks_reclaimed_ = 0;
};

}  // namespace spectre::event
