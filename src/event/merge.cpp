#include "event/merge.hpp"

namespace spectre::event {

MergedStream::MergedStream(std::vector<std::unique_ptr<EventStream>> sources) {
    heads_.reserve(sources.size());
    for (auto& s : sources) {
        Head h;
        h.source = std::move(s);
        heads_.push_back(std::move(h));
    }
    for (std::size_t i = 0; i < heads_.size(); ++i) refill(i);
}

void MergedStream::refill(std::size_t i) { heads_[i].event = heads_[i].source->next(); }

std::optional<Event> MergedStream::next() {
    std::size_t best = heads_.size();
    for (std::size_t i = 0; i < heads_.size(); ++i) {
        if (!heads_[i].event) continue;
        // Ties (equal timestamps) resolve to the lowest source index, which
        // is what makes the merged order — and thus every downstream result —
        // deterministic.
        if (best == heads_.size() || heads_[i].event->ts < heads_[best].event->ts) best = i;
    }
    if (best == heads_.size()) return std::nullopt;
    Event out = *heads_[best].event;
    out.seq = next_seq_++;
    refill(best);
    return out;
}

}  // namespace spectre::event
