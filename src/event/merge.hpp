// Deterministic k-way merge of event streams.
//
// Operators receive several incoming streams; the paper assumes a
// well-defined global order "by timestamps and tie-breaker rules" (§2.1).
// MergedStream implements exactly that: order by timestamp, break ties by
// source index (lower index wins), and stamp fresh global sequence numbers
// on the way out.
#pragma once

#include <memory>
#include <vector>

#include "event/stream.hpp"

namespace spectre::event {

class MergedStream final : public EventStream {
public:
    explicit MergedStream(std::vector<std::unique_ptr<EventStream>> sources);

    std::optional<Event> next() override;

private:
    struct Head {
        std::optional<Event> event;
        std::unique_ptr<EventStream> source;
    };

    void refill(std::size_t i);

    std::vector<Head> heads_;
    Seq next_seq_ = 0;
};

}  // namespace spectre::event
