// Event: the unit every engine in this repository processes.
//
// Events carry meta-data (global sequence number, logical timestamp, type,
// subject) plus up to kMaxAttrs numeric payload attributes addressed by
// schema slot. `seq` is the well-defined global order the paper assumes
// (§2.1: "events ... have a well-defined global ordering"); all engines and
// the consumption bookkeeping identify events by seq.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "event/schema.hpp"

namespace spectre::event {

using Seq = std::uint64_t;
using Timestamp = std::int64_t;

struct Event {
    Seq seq = 0;
    Timestamp ts = 0;
    TypeId type = util::kInvalidIntern;
    SubjectId subject = util::kInvalidIntern;
    std::array<double, kMaxAttrs> attrs{};

    double attr(AttrSlot slot) const noexcept { return attrs[slot]; }
    void set_attr(AttrSlot slot, double v) noexcept { attrs[slot] = v; }

    bool operator==(const Event&) const = default;
};

// Renders an event for logs/tests, resolving interned names via `schema`.
std::string to_string(const Event& e, const Schema& schema);

// A complex (derived) event produced on a pattern match: which window it came
// from, which input events constitute it, and computed payload attributes.
struct ComplexEvent {
    std::uint64_t window_id = 0;
    std::vector<Seq> constituents;            // sorted ascending by seq
    std::vector<std::pair<std::string, double>> payload;

    bool operator==(const ComplexEvent&) const = default;
};

std::string to_string(const ComplexEvent& e);

// Streaming result egress: engines hand each complex event to a sink the
// moment its window retires, in window order, instead of collecting the whole
// run into a vector (the collect-all vector is just the default sink,
// DESIGN.md §8). Invoked from the emitting engine's coordination thread; the
// callee owns the event.
using ResultSink = std::function<void(ComplexEvent&&)>;

}  // namespace spectre::event
