#include "event/event.hpp"

#include <sstream>

namespace spectre::event {

std::string to_string(const Event& e, const Schema& schema) {
    std::ostringstream os;
    os << '#' << e.seq << ' ';
    os << (e.type == util::kInvalidIntern ? "?" : schema.type_name(e.type));
    if (e.subject != util::kInvalidIntern) os << '(' << schema.subject_name(e.subject) << ')';
    os << "@" << e.ts << " {";
    for (std::size_t s = 0; s < schema.attr_count(); ++s) {
        if (s) os << ", ";
        os << schema.attr_name(s) << '=' << e.attrs[s];
    }
    os << '}';
    return os.str();
}

std::string to_string(const ComplexEvent& e) {
    std::ostringstream os;
    os << "cplx{w" << e.window_id << ", events=[";
    for (std::size_t i = 0; i < e.constituents.size(); ++i) {
        if (i) os << ',';
        os << e.constituents[i];
    }
    os << ']';
    for (const auto& [k, v] : e.payload) os << ", " << k << '=' << v;
    os << '}';
    return os.str();
}

}  // namespace spectre::event
