// Event stream abstractions.
//
// EventStream is a pull interface (next() until nullopt). The engines in this
// repository materialize streams into an EventStore first: windows are ranges
// over the store, operator instances address events by position, and the
// consumption bookkeeping addresses them by seq — exactly the shared-memory
// layout sketched in Fig. 2 ("events / windows" both live in shared memory).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "event/event.hpp"

namespace spectre::event {

class EventStream {
public:
    virtual ~EventStream() = default;
    // Returns the next event in stream order, or nullopt at end-of-stream.
    virtual std::optional<Event> next() = 0;
};

// Stream over a pre-built vector (datasets, tests).
class VectorStream final : public EventStream {
public:
    explicit VectorStream(std::vector<Event> events);
    std::optional<Event> next() override;

private:
    std::vector<Event> events_;
    std::size_t pos_ = 0;
};

// Append-only store of the operator's in-order input; shared (read-only) by
// all operator instances. Position in the store == index; Event::seq is
// assigned densely on append, so store[e.seq] == e.
class EventStore {
public:
    // Appends, overwriting `e.seq` with the store position. Returns the seq.
    Seq append(Event e);

    // Drains an entire stream into the store.
    void append_all(EventStream& stream);

    const Event& at(Seq seq) const;
    std::size_t size() const noexcept { return events_.size(); }
    bool empty() const noexcept { return events_.empty(); }

    // Contiguous range [first, last] inclusive; used for window extents.
    std::span<const Event> range(Seq first, Seq last) const;
    std::span<const Event> all() const noexcept { return events_; }

private:
    std::vector<Event> events_;
};

}  // namespace spectre::event
