// Event stream abstractions.
//
// EventStream is a pull interface (next() until nullopt); LiveStream is the
// push-based counterpart that bridges a producer thread (socket reader,
// generator) to a pulling consumer. The engines address events through an
// EventStore: windows are ranges over the store, operator instances address
// events by position, and the consumption bookkeeping addresses them by seq —
// the shared-memory layout sketched in Fig. 2 ("events / windows" both live
// in shared memory).
//
// The store is an ingestion *frontier*, not a finished batch: one writer
// appends while detection is already running. Engines read `size()` (the
// frontier) to learn how far the stream has arrived and `closed()` to learn
// that it ended; events below the frontier are immutable and their addresses
// are stable forever. Batch replay is just the special case where the whole
// stream is appended before the engines start.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "event/event.hpp"

namespace spectre::event {

class EventStream {
public:
    virtual ~EventStream() = default;
    // Returns the next event in stream order, or nullopt at end-of-stream.
    virtual std::optional<Event> next() = 0;
};

// Stream over a pre-built vector (datasets, tests).
class VectorStream final : public EventStream {
public:
    explicit VectorStream(std::vector<Event> events);
    std::optional<Event> next() override;

private:
    std::vector<Event> events_;
    std::size_t pos_ = 0;
};

// Push-based live stream: a producer thread pushes events (decoded from a
// socket, generated on the fly); next() blocks until an event is available or
// the producer closes the stream. This is the glue between "events arrive"
// and the pull-based ingestion loops.
class LiveStream final : public EventStream {
public:
    void push(Event e);
    void push_all(const std::vector<Event>& events);
    // Signals end-of-stream; next() returns nullopt once the queue drains.
    void close();

    std::optional<Event> next() override;

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Event> queue_;
    bool closed_ = false;
};

class EventStore;

// Read-only view of a contiguous seq range [first, last] of a store. Unlike a
// span, it stays valid across concurrent append() — elements are addressed
// through the store's chunk directory, never through a raw array.
class EventRange {
public:
    EventRange(const EventStore* store, Seq first, std::size_t count)
        : store_(store), first_(first), count_(count) {}

    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }
    const Event& operator[](std::size_t i) const;
    const Event& front() const { return (*this)[0]; }
    const Event& back() const { return (*this)[count_ - 1]; }

    class iterator {
    public:
        using value_type = Event;
        using reference = const Event&;
        using difference_type = std::ptrdiff_t;

        iterator(const EventRange* range, std::size_t i) : range_(range), i_(i) {}
        reference operator*() const { return (*range_)[i_]; }
        iterator& operator++() {
            ++i_;
            return *this;
        }
        bool operator==(const iterator& o) const { return i_ == o.i_; }
        bool operator!=(const iterator& o) const { return i_ != o.i_; }

    private:
        const EventRange* range_;
        std::size_t i_;
    };

    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, count_); }

private:
    const EventStore* store_;
    Seq first_;
    std::size_t count_;
};

// Append-only store of the operator's in-order input; written by exactly one
// ingestion thread and read concurrently by the splitter and all operator
// instances. Position in the store == index; Event::seq is assigned densely
// on append, so store[e.seq] == e.
//
// Concurrency contract (single writer, many readers, no locks):
//   * storage is chunked — append() never moves an already-published event,
//     so `&at(seq)` is stable for the lifetime of the store;
//   * `size()` is the atomic arrival frontier, published with release
//     ordering after the event bytes are written: a reader that observes
//     size() > seq may freely read at(seq)/range() up to that frontier;
//   * `close()` publishes end-of-stream; once a reader observes closed(),
//     the next size() it reads is the stream's final length.
class EventStore {
public:
    // 4096-event chunks; the fixed chunk directory caps one store at
    // kMaxChunks * kChunkSize (~134M) events — plenty above the paper's
    // largest replayed day, and loud (SPECTRE_REQUIRE) when exceeded.
    static constexpr std::size_t kChunkShift = 12;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;

    EventStore();
    ~EventStore();

    EventStore(EventStore&& other) noexcept;
    EventStore& operator=(EventStore&& other) noexcept;
    EventStore(const EventStore&) = delete;
    EventStore& operator=(const EventStore&) = delete;

    // Appends, overwriting `e.seq` with the store position. Returns the seq.
    // Writer-side only; must not be called after close().
    Seq append(Event e);

    // In-place append for the scatter-decode ingest path (DESIGN.md §14):
    // returns the next slot with `seq` pre-assigned and the other fields
    // default-initialized; the caller fills it and later calls
    // publish_appends() to release-publish every slot taken since the last
    // publish in one frontier store. Until then readers cannot see the
    // pending slots — size() still returns the published frontier. Writer-
    // side only; must not be called after close(); do not interleave with
    // append() while slots are unpublished.
    Event& append_slot();
    std::size_t pending_appends() const noexcept { return pending_; }
    void publish_appends() noexcept {
        if (pending_ == 0) return;
        size_.store(size_.load(std::memory_order_relaxed) + pending_,
                    std::memory_order_release);
        pending_ = 0;
    }

    // Drains an entire stream into the store.
    void append_all(EventStream& stream);

    // Writer-side: publishes end-of-stream. No append() may follow.
    void close() noexcept { closed_.store(true, std::memory_order_release); }
    bool closed() const noexcept { return closed_.load(std::memory_order_acquire); }

    const Event& at(Seq seq) const;
    // Arrival frontier: number of events published so far.
    std::size_t size() const noexcept { return size_.load(std::memory_order_acquire); }
    bool empty() const noexcept { return size() == 0; }

    // Reclamation hook for shared multi-reader stores (DESIGN.md §15): frees
    // the chunk arrays whose entire seq range lies below min(seq, frontier).
    // Returns the number of chunks freed. Caller contract (event::ChunkPins
    // enforces it): calls are serialized, and no reader will ever again
    // address a seq below `seq` — the "addresses stable forever" guarantee
    // narrows to the unreclaimed suffix. The writer is unaffected: it only
    // touches the frontier chunk, which is never below the frontier.
    std::size_t release_chunks_below(Seq seq) noexcept;

    // Range [first, last] inclusive; valid across concurrent append().
    EventRange range(Seq first, Seq last) const;

private:
    friend class EventRange;
    const Event& slot(Seq seq) const noexcept {
        // Safe after a bounds check against size(): the acquire load of the
        // frontier ordered this chunk pointer and the event bytes.
        return chunks_[seq >> kChunkShift].load(std::memory_order_relaxed)
            [seq & (kChunkSize - 1)];
    }
    void free_chunks() noexcept;

    std::unique_ptr<std::atomic<Event*>[]> chunks_;
    std::atomic<std::size_t> size_{0};
    std::size_t pending_ = 0;  // writer-thread only: slots taken, unpublished
    std::atomic<bool> closed_{false};
};

inline const Event& EventRange::operator[](std::size_t i) const {
    return store_->slot(first_ + i);
}

// A sub-stream of a larger stream, materialized as its own EventStore with a
// record of where each local event sits in the parent stream. Engines running
// over the sub-store see dense local seqs (append() renumbers); results they
// emit are translated back into parent seqs before leaving the sub-stream —
// the key-partitioned lanes of DESIGN.md §10 are built on this.
//
// Concurrency: the wrapped store() keeps the full EventStore single-writer/
// multi-reader contract, but the seq MAPPING is owning-thread only — append
// and to_parent()/translate() must run on the same thread (a §10 lane's
// shard task does both). Unlike the chunked store, the mapping's deque may
// relocate its internal directory on growth, so cross-thread translation
// would need its own synchronization — add chunked rows before handing the
// mapping to concurrent readers (e.g. future lane stealing).
class MappedStore {
public:
    // Appends `e` (its seq is overwritten with the local position) and
    // records that it is event `parent_seq` of the parent stream.
    Seq append_mapped(Event e, Seq parent_seq);

    void close() noexcept { store_.close(); }
    bool closed() const noexcept { return store_.closed(); }

    EventStore& store() noexcept { return store_; }
    const EventStore& store() const noexcept { return store_; }

    // Parent seq of local event `local` (must be below the frontier).
    Seq to_parent(Seq local) const { return parent_of_[static_cast<std::size_t>(local)]; }

    // Rewrites a vector of local seqs (e.g. ComplexEvent::constituents) into
    // parent seqs in place. Local seqs ascending implies parent seqs
    // ascending — the mapping is strictly monotone by construction.
    void translate(std::vector<Seq>& seqs) const {
        for (auto& s : seqs) s = to_parent(s);
    }

private:
    EventStore store_;
    std::deque<Seq> parent_of_;  // owning-thread only (see class comment)
};

}  // namespace spectre::event
