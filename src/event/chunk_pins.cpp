#include "event/chunk_pins.hpp"

#include <algorithm>

namespace spectre::event {

ChunkPins::Cursor ChunkPins::attach() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (reclaimed_until_ > 0) return kInvalidCursor;
    next_needed_.push_back(0);
    ++live_;
    return next_needed_.size() - 1;
}

std::size_t ChunkPins::advance(Cursor cursor, Seq next_needed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (cursor >= next_needed_.size() || next_needed_[cursor] == kDetached) return 0;
    if (next_needed <= next_needed_[cursor]) return 0;  // monotone; ignore regressions
    next_needed_[cursor] = next_needed;
    return reclaim_locked();
}

std::size_t ChunkPins::detach(Cursor cursor) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (cursor >= next_needed_.size() || next_needed_[cursor] == kDetached) return 0;
    next_needed_[cursor] = kDetached;
    --live_;
    // The last reader's departure retains history (late-attach replay);
    // otherwise the remaining minimum may have risen — reclaim.
    if (live_ == 0) return 0;
    return reclaim_locked();
}

std::size_t ChunkPins::reclaim_locked() {
    Seq min_needed = kDetached;
    for (const Seq s : next_needed_)
        if (s != kDetached) min_needed = std::min(min_needed, s);
    if (min_needed == kDetached) return 0;
    // Only whole chunks below the minimum are reclaimable; stop early when
    // the watermark hasn't crossed a chunk boundary since the last reclaim.
    const Seq chunk_floor = (min_needed >> EventStore::kChunkShift)
                            << EventStore::kChunkShift;
    if (chunk_floor <= reclaimed_until_) return 0;
    const std::size_t freed = store_->release_chunks_below(chunk_floor);
    reclaimed_until_ = chunk_floor;
    chunks_reclaimed_ += freed;
    return freed;
}

}  // namespace spectre::event
