#include "event/stream.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace spectre::event {

VectorStream::VectorStream(std::vector<Event> events) : events_(std::move(events)) {}

std::optional<Event> VectorStream::next() {
    if (pos_ >= events_.size()) return std::nullopt;
    return events_[pos_++];
}

void LiveStream::push(Event e) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        SPECTRE_REQUIRE(!closed_, "push on a closed LiveStream");
        queue_.push_back(e);
    }
    cv_.notify_one();
}

void LiveStream::push_all(const std::vector<Event>& events) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        SPECTRE_REQUIRE(!closed_, "push on a closed LiveStream");
        queue_.insert(queue_.end(), events.begin(), events.end());
    }
    cv_.notify_one();
}

void LiveStream::close() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::optional<Event> LiveStream::next() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Event e = queue_.front();
    queue_.pop_front();
    return e;
}

EventStore::EventStore()
    : chunks_(std::make_unique<std::atomic<Event*>[]>(kMaxChunks)) {}

EventStore::~EventStore() { free_chunks(); }

void EventStore::free_chunks() noexcept {
    if (!chunks_) return;
    const std::size_t n = size_.load(std::memory_order_acquire) + pending_;
    const std::size_t used = (n + kChunkSize - 1) >> kChunkShift;
    for (std::size_t i = 0; i < used; ++i) delete[] chunks_[i].load(std::memory_order_relaxed);
}

EventStore::EventStore(EventStore&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      size_(other.size_.load(std::memory_order_relaxed)),
      pending_(other.pending_),
      closed_(other.closed_.load(std::memory_order_relaxed)) {
    other.chunks_ = std::make_unique<std::atomic<Event*>[]>(kMaxChunks);
    other.size_.store(0, std::memory_order_relaxed);
    other.pending_ = 0;
    other.closed_.store(false, std::memory_order_relaxed);
}

EventStore& EventStore::operator=(EventStore&& other) noexcept {
    if (this == &other) return *this;
    free_chunks();
    chunks_ = std::move(other.chunks_);
    size_.store(other.size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    pending_ = other.pending_;
    closed_.store(other.closed_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    other.chunks_ = std::make_unique<std::atomic<Event*>[]>(kMaxChunks);
    other.size_.store(0, std::memory_order_relaxed);
    other.pending_ = 0;
    other.closed_.store(false, std::memory_order_relaxed);
    return *this;
}

Event& EventStore::append_slot() {
    SPECTRE_REQUIRE(!closed(), "append on a closed EventStore");
    const std::size_t n = size_.load(std::memory_order_relaxed) + pending_;  // writer-owned
    const std::size_t chunk_index = n >> kChunkShift;
    SPECTRE_REQUIRE(chunk_index < kMaxChunks, "EventStore capacity exceeded");
    Event* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
        chunk = new Event[kChunkSize];
        chunks_[chunk_index].store(chunk, std::memory_order_relaxed);
    }
    ++pending_;
    Event& slot = chunk[n & (kChunkSize - 1)];
    slot.seq = n;
    return slot;
}

Seq EventStore::append(Event e) {
    Event& slot = append_slot();
    const Seq n = slot.seq;
    e.seq = n;
    slot = e;
    // Release-publish the frontier: readers that acquire size() > n also see
    // the chunk pointer and the event bytes written above.
    publish_appends();
    return n;
}

void EventStore::append_all(EventStream& stream) {
    while (auto e = stream.next()) append(*e);
}

std::size_t EventStore::release_chunks_below(Seq seq) noexcept {
    const std::size_t frontier = size_.load(std::memory_order_acquire);
    const std::size_t limit = std::min<std::size_t>(seq, frontier) >> kChunkShift;
    std::size_t freed = 0;
    for (std::size_t i = 0; i < limit; ++i) {
        Event* chunk = chunks_[i].exchange(nullptr, std::memory_order_relaxed);
        if (chunk != nullptr) {
            delete[] chunk;
            ++freed;
        }
    }
    return freed;
}

const Event& EventStore::at(Seq seq) const {
    SPECTRE_REQUIRE(seq < size(), "event seq out of range");
    return slot(seq);
}

EventRange EventStore::range(Seq first, Seq last) const {
    SPECTRE_REQUIRE(first <= last && last < size(), "invalid event range");
    return EventRange(this, first, last - first + 1);
}

Seq MappedStore::append_mapped(Event e, Seq parent_seq) {
    SPECTRE_REQUIRE(parent_of_.empty() || parent_of_.back() < parent_seq,
                    "MappedStore parent seqs must be strictly increasing");
    parent_of_.push_back(parent_seq);
    return store_.append(std::move(e));
}

}  // namespace spectre::event
