#include "event/stream.hpp"

#include "util/assert.hpp"

namespace spectre::event {

VectorStream::VectorStream(std::vector<Event> events) : events_(std::move(events)) {}

std::optional<Event> VectorStream::next() {
    if (pos_ >= events_.size()) return std::nullopt;
    return events_[pos_++];
}

Seq EventStore::append(Event e) {
    const Seq seq = events_.size();
    e.seq = seq;
    events_.push_back(e);
    return seq;
}

void EventStore::append_all(EventStream& stream) {
    while (auto e = stream.next()) append(*e);
}

const Event& EventStore::at(Seq seq) const {
    SPECTRE_REQUIRE(seq < events_.size(), "event seq out of range");
    return events_[seq];
}

std::span<const Event> EventStore::range(Seq first, Seq last) const {
    SPECTRE_REQUIRE(first <= last && last < events_.size(), "invalid event range");
    return std::span<const Event>(events_).subspan(first, last - first + 1);
}

}  // namespace spectre::event
