// Schema: the naming side of the event model.
//
// A Schema interns event-type names, subject names (e.g. stock symbols) and
// attribute names. Attributes map to fixed slots in Event::attrs so that the
// matching hot path performs no hashing — predicates are compiled against
// slot indices (DESIGN.md §2, item 2). One Schema instance is shared by a
// query, its input streams and every engine processing them; it is frozen
// (no more interning) before parallel processing begins.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/intern.hpp"

namespace spectre::event {

using TypeId = util::InternId;
using SubjectId = util::InternId;
using AttrSlot = std::size_t;

// Maximum number of numeric attributes per event. Stock events use
// {open, close, volume}; the spare slot keeps queries like QE's `change`
// expressible without a layout change.
inline constexpr std::size_t kMaxAttrs = 4;

class Schema {
public:
    TypeId intern_type(std::string_view name) { return types_.intern(name); }
    TypeId lookup_type(std::string_view name) const { return types_.lookup(name); }
    const std::string& type_name(TypeId id) const { return types_.name(id); }
    std::size_t type_count() const noexcept { return types_.size(); }

    SubjectId intern_subject(std::string_view name) { return subjects_.intern(name); }
    SubjectId lookup_subject(std::string_view name) const { return subjects_.lookup(name); }
    const std::string& subject_name(SubjectId id) const { return subjects_.name(id); }
    std::size_t subject_count() const noexcept { return subjects_.size(); }

    // Returns the slot for `name`, assigning the next free one if unseen.
    // Throws once more than kMaxAttrs distinct attribute names are requested.
    AttrSlot intern_attr(std::string_view name);
    // Returns the slot or kMaxAttrs if the attribute was never interned.
    AttrSlot lookup_attr(std::string_view name) const;
    const std::string& attr_name(AttrSlot slot) const;
    std::size_t attr_count() const noexcept { return attrs_.size(); }

private:
    util::InternTable types_;
    util::InternTable subjects_;
    util::InternTable attrs_;
};

}  // namespace spectre::event
